//! Persistence-event accounting.
//!
//! The paper's evaluation attributes performance differences between logging
//! strategies to three quantities: the number of ordering fences, the number
//! of cache-line flushes, and the number of bytes written/logged (§5.3).
//! [`PmemStats`] counts all of them; [`StatsSnapshot`] captures a point-in-time
//! copy so callers can compute per-operation deltas.

use std::sync::atomic::{AtomicU64, Ordering};

/// One shard's bank of hot-path counters.
///
/// Sharded pools route the six per-operation counters (stores, loads,
/// flushes, fences and their byte counts) here instead of the shared
/// [`PmemStats`] atomics, so the store path never touches a contended cache
/// line. The bank's writer is whoever holds the owning shard's lock (or the
/// claimed thread of a `SingleThread` pool), which is why the increments can
/// be plain load+store pairs instead of atomic read-modify-writes: there is
/// exactly one writer at a time, and concurrent
/// [`snapshot`](PmemStats::snapshot) readers only ever see a slightly stale
/// value, never a torn one. Padded to two cache lines so neighbouring
/// shards' banks never false-share.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct ShardCounters {
    /// Cache-line flushes issued against this shard's lines.
    pub flushes: AtomicU64,
    /// Ordering fences (attributed to shard 0, the fence-epoch owner).
    pub fences: AtomicU64,
    /// Store operations whose first byte fell in this shard.
    pub writes: AtomicU64,
    /// Bytes of those stores (the full store, even if it spilled into the
    /// next shard — operation counts attribute to the first shard).
    pub write_bytes: AtomicU64,
    /// Load operations whose first byte fell in this shard.
    pub reads: AtomicU64,
    /// Bytes of those loads.
    pub read_bytes: AtomicU64,
}

impl ShardCounters {
    /// Adds `by` with a plain load+store (no RMW). Callers must hold the
    /// owning shard's lock (or be the claimed single thread) — see the type
    /// docs for why that makes this exact.
    #[inline]
    pub(crate) fn add(&self, counter: &AtomicU64, by: u64) {
        counter.store(counter.load(Ordering::Relaxed) + by, Ordering::Relaxed);
    }

    /// This bank's counters as a snapshot with only the hot fields set.
    pub fn snapshot_hot(&self) -> StatsSnapshot {
        StatsSnapshot {
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            ..StatsSnapshot::default()
        }
    }
}

/// Shared, thread-safe persistence counters for one pool.
///
/// All counters are monotone. Logging-layer counters (`log_entries`,
/// `log_bytes`, `vlog_entries`, `vlog_bytes`) are bumped by the runtime crate
/// rather than the pool itself.
///
/// Sharded pools additionally carry one [`ShardCounters`] bank per shard;
/// [`snapshot`](Self::snapshot) folds the banks into the shared atomics so a
/// snapshot means the same thing under every [`PoolConcurrency`] mode.
///
/// [`PoolConcurrency`]: crate::PoolConcurrency
#[derive(Debug, Default)]
pub struct PmemStats {
    /// Cache-line flushes issued (`clwb`-equivalents).
    pub flushes: AtomicU64,
    /// Ordering fences issued (`sfence`-equivalents).
    pub fences: AtomicU64,
    /// Store operations issued to the pool.
    pub writes: AtomicU64,
    /// Bytes stored to the pool.
    pub write_bytes: AtomicU64,
    /// Load operations issued to the pool.
    pub reads: AtomicU64,
    /// Bytes loaded from the pool.
    pub read_bytes: AtomicU64,
    /// Allocations served by the persistent heap.
    pub allocs: AtomicU64,
    /// Frees returned to the persistent heap.
    pub frees: AtomicU64,
    /// Zero-fence transactional reservations (`reserve` calls served).
    pub reserves: AtomicU64,
    /// `publish` calls (one per committing transaction with allocations).
    pub publishes: AtomicU64,
    /// `cancel` calls (aborting transactions returning reservations).
    pub cancels: AtomicU64,
    /// Blocks handed out from a free list (immediate or transactional).
    pub alloc_freelist: AtomicU64,
    /// Blocks handed out by bumping an arena frontier.
    pub alloc_frontier: AtomicU64,
    /// Reservations served from a thread-local magazine without taking any
    /// lock (a subset of `alloc_freelist`: magazines refill from free
    /// lists).
    pub magazine_hits: AtomicU64,
    /// Log entries appended (undo/clobber/redo), bumped by the runtime.
    pub log_entries: AtomicU64,
    /// Log payload bytes appended, bumped by the runtime.
    pub log_bytes: AtomicU64,
    /// v_log entries recorded, bumped by the runtime.
    pub vlog_entries: AtomicU64,
    /// v_log payload bytes recorded, bumped by the runtime.
    pub vlog_bytes: AtomicU64,
    /// Reads redirected through a redo-log write set (Mnemosyne-style read
    /// interposition), bumped by the runtime.
    pub interposed_reads: AtomicU64,
    /// Fault plans armed on the pool (see `FaultPlan`).
    pub faults_armed: AtomicU64,
    /// Injected faults that actually fired: trip-point crashes, torn stores,
    /// and transient read faults.
    pub faults_tripped: AtomicU64,
    /// Operations retried after a transient media fault, bumped by the
    /// runtime's recovery retry loop.
    pub fault_retries: AtomicU64,
    /// Trace events recorded while a tracer is attached. Zero whenever
    /// tracing is disabled — the zero-overhead pin tests rely on that.
    pub trace_events: AtomicU64,
    /// Trace events lost to full per-thread rings.
    pub trace_dropped: AtomicU64,
    /// Flush calls attributed to the clobber/undo log (`LogKind::Clobber`).
    pub clog_flushes: AtomicU64,
    /// Fence *requests* attributed to the clobber/undo log. Requests, not
    /// issued fences: a request satisfied by a shared group-commit epoch
    /// still counts here, with the saving recorded in `gc_fences_saved`.
    pub clog_fences: AtomicU64,
    /// Flush calls attributed to the redo log (`LogKind::Redo`).
    pub rlog_flushes: AtomicU64,
    /// Fence requests attributed to the redo log.
    pub rlog_fences: AtomicU64,
    /// Flush calls attributed to v_log slot records, bumped by the runtime.
    pub vlog_flushes: AtomicU64,
    /// Fence requests attributed to v_log slot records, bumped by the
    /// runtime.
    pub vlog_fences: AtomicU64,
    /// Group-commit epochs closed (= ordering fences the coalescer actually
    /// issued), bumped by the runtime.
    pub gc_epochs: AtomicU64,
    /// Fence requests absorbed by sharing an epoch's fence (for an epoch of
    /// `n` coalesced committers this grows by `n - 1`), bumped by the
    /// runtime.
    pub gc_fences_saved: AtomicU64,
    /// v_log slots examined by recovery scans, bumped by the runtime.
    pub rec_slots_scanned: AtomicU64,
    /// Interrupted transactions completed by recovery re-execution, bumped
    /// by the runtime.
    pub rec_reexecuted: AtomicU64,
    /// Re-executions that resumed from a persisted progress checkpoint
    /// instead of restarting, bumped by the runtime.
    pub rec_resumed: AtomicU64,
    /// Re-execution progress checkpoints persisted (watermark advances),
    /// bumped by the runtime.
    pub rec_watermark_advances: AtomicU64,
    /// High-water mark of worker threads a recovery scan used (set with
    /// `fetch_max`, so it stays monotone like every other counter).
    pub rec_workers: AtomicU64,
    /// Slots whose recovery budget (per-slot deadline or global budget)
    /// expired, bumped by the runtime.
    pub rec_budget_expired: AtomicU64,
    /// Candidate schedules the explorer executed (clean run + crash sweep),
    /// bumped by the runtime's schedule explorer.
    pub exp_schedules: AtomicU64,
    /// Interleaving subtrees the explorer pruned (sleep-set commutativity
    /// skips plus preemption-bound rejections), bumped by the runtime.
    pub exp_pruned: AtomicU64,
    /// Crash trip points the explorer planted (one per explored
    /// schedule-prefix crash), bumped by the runtime.
    pub exp_crashes_planted: AtomicU64,
    /// Invariant failures the explorer found and ddmin-minimized, bumped by
    /// the runtime.
    pub exp_failures_minimized: AtomicU64,
    /// Lock-set grants by the runtime's lock manager (one per granted
    /// acquire/try_acquire, however many locks the set contains), bumped by
    /// the runtime.
    pub lock_acquisitions: AtomicU64,
    /// Individual shared (read) locks granted, bumped by the runtime.
    pub lock_read_holds: AtomicU64,
    /// Individual exclusive (write) locks granted, bumped by the runtime.
    pub lock_write_holds: AtomicU64,
    /// Lock conflicts: refused `try_acquire`s and denied upgrades, bumped
    /// by the runtime.
    pub lock_conflicts: AtomicU64,
    /// Blocking acquires that could not be granted immediately and had to
    /// queue, bumped by the runtime.
    pub lock_waits: AtomicU64,
    /// Client requests admitted by the KV service front-end, bumped by the
    /// service layer.
    pub net_accepted: AtomicU64,
    /// Client requests shed with a typed `Overloaded` response (per-client
    /// window or global queue cap exceeded), bumped by the service layer.
    pub net_shed: AtomicU64,
    /// Write requests coalesced into batched locked transactions, bumped by
    /// the service layer (grows by the batch size per batch).
    pub net_batched: AtomicU64,
    /// `GET`s served off the volatile cache without entering a transaction,
    /// bumped by the service layer.
    pub net_snapshot_reads: AtomicU64,
    /// Per-shard hot-counter banks. Empty for single-lock pools; sharded
    /// pools route all hot-path counts here and leave the shared hot
    /// atomics above at zero, so [`snapshot`](Self::snapshot) can always
    /// report `shared + Σ banks`.
    banks: Vec<ShardCounters>,
}

impl PmemStats {
    /// Creates zeroed counters with no per-shard banks (single-lock pools).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates zeroed counters with `shards` per-shard banks.
    pub(crate) fn with_banks(shards: usize) -> Self {
        Self {
            banks: (0..shards).map(|_| ShardCounters::default()).collect(),
            ..Self::default()
        }
    }

    /// The hot-counter bank for shard `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (single-lock pools have no banks).
    pub(crate) fn bank(&self, idx: usize) -> &ShardCounters {
        &self.banks[idx]
    }

    /// Point-in-time copies of each shard's hot counters, in shard order.
    /// Empty for single-lock pools. Summing these equals the hot fields of
    /// [`snapshot`](Self::snapshot) for a sharded pool.
    pub fn shard_snapshots(&self) -> Vec<StatsSnapshot> {
        self.banks.iter().map(ShardCounters::snapshot_hot).collect()
    }

    /// Captures a point-in-time copy of all counters. Hot fields fold the
    /// per-shard banks into the shared atomics, so the snapshot means the
    /// same thing under every concurrency mode.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut hot = StatsSnapshot::default();
        for bank in &self.banks {
            let b = bank.snapshot_hot();
            hot.flushes += b.flushes;
            hot.fences += b.fences;
            hot.writes += b.writes;
            hot.write_bytes += b.write_bytes;
            hot.reads += b.reads;
            hot.read_bytes += b.read_bytes;
        }
        StatsSnapshot {
            flushes: hot.flushes + self.flushes.load(Ordering::Relaxed),
            fences: hot.fences + self.fences.load(Ordering::Relaxed),
            writes: hot.writes + self.writes.load(Ordering::Relaxed),
            write_bytes: hot.write_bytes + self.write_bytes.load(Ordering::Relaxed),
            reads: hot.reads + self.reads.load(Ordering::Relaxed),
            read_bytes: hot.read_bytes + self.read_bytes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            reserves: self.reserves.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            cancels: self.cancels.load(Ordering::Relaxed),
            alloc_freelist: self.alloc_freelist.load(Ordering::Relaxed),
            alloc_frontier: self.alloc_frontier.load(Ordering::Relaxed),
            magazine_hits: self.magazine_hits.load(Ordering::Relaxed),
            log_entries: self.log_entries.load(Ordering::Relaxed),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
            vlog_entries: self.vlog_entries.load(Ordering::Relaxed),
            vlog_bytes: self.vlog_bytes.load(Ordering::Relaxed),
            interposed_reads: self.interposed_reads.load(Ordering::Relaxed),
            faults_armed: self.faults_armed.load(Ordering::Relaxed),
            faults_tripped: self.faults_tripped.load(Ordering::Relaxed),
            fault_retries: self.fault_retries.load(Ordering::Relaxed),
            trace_events: self.trace_events.load(Ordering::Relaxed),
            trace_dropped: self.trace_dropped.load(Ordering::Relaxed),
            clog_flushes: self.clog_flushes.load(Ordering::Relaxed),
            clog_fences: self.clog_fences.load(Ordering::Relaxed),
            rlog_flushes: self.rlog_flushes.load(Ordering::Relaxed),
            rlog_fences: self.rlog_fences.load(Ordering::Relaxed),
            vlog_flushes: self.vlog_flushes.load(Ordering::Relaxed),
            vlog_fences: self.vlog_fences.load(Ordering::Relaxed),
            gc_epochs: self.gc_epochs.load(Ordering::Relaxed),
            gc_fences_saved: self.gc_fences_saved.load(Ordering::Relaxed),
            rec_slots_scanned: self.rec_slots_scanned.load(Ordering::Relaxed),
            rec_reexecuted: self.rec_reexecuted.load(Ordering::Relaxed),
            rec_resumed: self.rec_resumed.load(Ordering::Relaxed),
            rec_watermark_advances: self.rec_watermark_advances.load(Ordering::Relaxed),
            rec_workers: self.rec_workers.load(Ordering::Relaxed),
            rec_budget_expired: self.rec_budget_expired.load(Ordering::Relaxed),
            exp_schedules: self.exp_schedules.load(Ordering::Relaxed),
            exp_pruned: self.exp_pruned.load(Ordering::Relaxed),
            exp_crashes_planted: self.exp_crashes_planted.load(Ordering::Relaxed),
            exp_failures_minimized: self.exp_failures_minimized.load(Ordering::Relaxed),
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            lock_read_holds: self.lock_read_holds.load(Ordering::Relaxed),
            lock_write_holds: self.lock_write_holds.load(Ordering::Relaxed),
            lock_conflicts: self.lock_conflicts.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            net_accepted: self.net_accepted.load(Ordering::Relaxed),
            net_shed: self.net_shed.load(Ordering::Relaxed),
            net_batched: self.net_batched.load(Ordering::Relaxed),
            net_snapshot_reads: self.net_snapshot_reads.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn bump(&self, counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`PmemStats`], with field meanings identical to
/// the live counters.
///
/// # Example
///
/// ```
/// use clobber_pmem::{PmemPool, PoolOptions};
///
/// # fn main() -> Result<(), clobber_pmem::PmemError> {
/// let pool = PmemPool::create(PoolOptions::performance(1 << 20))?;
/// let a = pool.alloc(64)?;
/// let before = pool.stats().snapshot();
/// pool.write_u64(a, 7)?;
/// pool.persist(a, 8)?;
/// let delta = pool.stats().snapshot().delta(&before);
/// assert_eq!(delta.fences, 1);
/// assert!(delta.flushes >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Cache-line flushes issued.
    pub flushes: u64,
    /// Ordering fences issued.
    pub fences: u64,
    /// Store operations issued.
    pub writes: u64,
    /// Bytes stored.
    pub write_bytes: u64,
    /// Load operations issued.
    pub reads: u64,
    /// Bytes loaded.
    pub read_bytes: u64,
    /// Allocations served.
    pub allocs: u64,
    /// Frees returned.
    pub frees: u64,
    /// Zero-fence transactional reservations served.
    pub reserves: u64,
    /// `publish` calls.
    pub publishes: u64,
    /// `cancel` calls.
    pub cancels: u64,
    /// Blocks served from a free list.
    pub alloc_freelist: u64,
    /// Blocks served by bumping an arena frontier.
    pub alloc_frontier: u64,
    /// Reservations served lock-free from a thread-local magazine.
    pub magazine_hits: u64,
    /// Log entries appended (undo/clobber/redo).
    pub log_entries: u64,
    /// Log payload bytes appended.
    pub log_bytes: u64,
    /// v_log records written.
    pub vlog_entries: u64,
    /// v_log payload bytes written.
    pub vlog_bytes: u64,
    /// Reads redirected through a redo write set.
    pub interposed_reads: u64,
    /// Fault plans armed on the pool.
    pub faults_armed: u64,
    /// Injected faults that fired (crashes, torn stores, transient reads).
    pub faults_tripped: u64,
    /// Operations retried after a transient media fault.
    pub fault_retries: u64,
    /// Trace events recorded (0 unless a tracer was attached).
    pub trace_events: u64,
    /// Trace events lost to full rings.
    pub trace_dropped: u64,
    /// Flushes attributed to the clobber/undo log.
    pub clog_flushes: u64,
    /// Fence requests attributed to the clobber/undo log.
    pub clog_fences: u64,
    /// Flushes attributed to the redo log.
    pub rlog_flushes: u64,
    /// Fence requests attributed to the redo log.
    pub rlog_fences: u64,
    /// Flushes attributed to v_log slot records.
    pub vlog_flushes: u64,
    /// Fence requests attributed to v_log slot records.
    pub vlog_fences: u64,
    /// Group-commit epochs closed (fences the coalescer issued).
    pub gc_epochs: u64,
    /// Fence requests absorbed by epoch sharing.
    pub gc_fences_saved: u64,
    /// v_log slots examined by recovery scans.
    pub rec_slots_scanned: u64,
    /// Interrupted transactions completed by recovery re-execution.
    pub rec_reexecuted: u64,
    /// Re-executions resumed from a persisted progress checkpoint.
    pub rec_resumed: u64,
    /// Re-execution progress checkpoints persisted (watermark advances).
    pub rec_watermark_advances: u64,
    /// High-water mark of recovery worker threads used.
    pub rec_workers: u64,
    /// Slots whose recovery budget expired.
    pub rec_budget_expired: u64,
    /// Candidate schedules the explorer executed.
    pub exp_schedules: u64,
    /// Interleaving subtrees the explorer pruned.
    pub exp_pruned: u64,
    /// Crash trip points the explorer planted.
    pub exp_crashes_planted: u64,
    /// Invariant failures the explorer found and minimized.
    pub exp_failures_minimized: u64,
    /// Lock-set grants by the runtime's lock manager.
    pub lock_acquisitions: u64,
    /// Individual shared (read) locks granted.
    pub lock_read_holds: u64,
    /// Individual exclusive (write) locks granted.
    pub lock_write_holds: u64,
    /// Lock conflicts (refused `try_acquire`s and denied upgrades).
    pub lock_conflicts: u64,
    /// Blocking acquires that had to queue.
    pub lock_waits: u64,
    /// Client requests admitted by the KV service front-end.
    pub net_accepted: u64,
    /// Client requests shed with a typed `Overloaded` response.
    pub net_shed: u64,
    /// Write requests coalesced into batched locked transactions.
    pub net_batched: u64,
    /// `GET`s served off the volatile cache without a transaction.
    pub net_snapshot_reads: u64,
}

impl StatsSnapshot {
    /// Computes `self - earlier`, field-wise.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier (counter
    /// values larger than `self`'s).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            flushes: self.flushes - earlier.flushes,
            fences: self.fences - earlier.fences,
            writes: self.writes - earlier.writes,
            write_bytes: self.write_bytes - earlier.write_bytes,
            reads: self.reads - earlier.reads,
            read_bytes: self.read_bytes - earlier.read_bytes,
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
            reserves: self.reserves - earlier.reserves,
            publishes: self.publishes - earlier.publishes,
            cancels: self.cancels - earlier.cancels,
            alloc_freelist: self.alloc_freelist - earlier.alloc_freelist,
            alloc_frontier: self.alloc_frontier - earlier.alloc_frontier,
            magazine_hits: self.magazine_hits - earlier.magazine_hits,
            log_entries: self.log_entries - earlier.log_entries,
            log_bytes: self.log_bytes - earlier.log_bytes,
            vlog_entries: self.vlog_entries - earlier.vlog_entries,
            vlog_bytes: self.vlog_bytes - earlier.vlog_bytes,
            interposed_reads: self.interposed_reads - earlier.interposed_reads,
            faults_armed: self.faults_armed - earlier.faults_armed,
            faults_tripped: self.faults_tripped - earlier.faults_tripped,
            fault_retries: self.fault_retries - earlier.fault_retries,
            trace_events: self.trace_events - earlier.trace_events,
            trace_dropped: self.trace_dropped - earlier.trace_dropped,
            clog_flushes: self.clog_flushes - earlier.clog_flushes,
            clog_fences: self.clog_fences - earlier.clog_fences,
            rlog_flushes: self.rlog_flushes - earlier.rlog_flushes,
            rlog_fences: self.rlog_fences - earlier.rlog_fences,
            vlog_flushes: self.vlog_flushes - earlier.vlog_flushes,
            vlog_fences: self.vlog_fences - earlier.vlog_fences,
            gc_epochs: self.gc_epochs - earlier.gc_epochs,
            gc_fences_saved: self.gc_fences_saved - earlier.gc_fences_saved,
            rec_slots_scanned: self.rec_slots_scanned - earlier.rec_slots_scanned,
            rec_reexecuted: self.rec_reexecuted - earlier.rec_reexecuted,
            rec_resumed: self.rec_resumed - earlier.rec_resumed,
            rec_watermark_advances: self.rec_watermark_advances - earlier.rec_watermark_advances,
            rec_workers: self.rec_workers - earlier.rec_workers,
            rec_budget_expired: self.rec_budget_expired - earlier.rec_budget_expired,
            exp_schedules: self.exp_schedules - earlier.exp_schedules,
            exp_pruned: self.exp_pruned - earlier.exp_pruned,
            exp_crashes_planted: self.exp_crashes_planted - earlier.exp_crashes_planted,
            exp_failures_minimized: self.exp_failures_minimized - earlier.exp_failures_minimized,
            lock_acquisitions: self.lock_acquisitions - earlier.lock_acquisitions,
            lock_read_holds: self.lock_read_holds - earlier.lock_read_holds,
            lock_write_holds: self.lock_write_holds - earlier.lock_write_holds,
            lock_conflicts: self.lock_conflicts - earlier.lock_conflicts,
            lock_waits: self.lock_waits - earlier.lock_waits,
            net_accepted: self.net_accepted - earlier.net_accepted,
            net_shed: self.net_shed - earlier.net_shed,
            net_batched: self.net_batched - earlier.net_batched,
            net_snapshot_reads: self.net_snapshot_reads - earlier.net_snapshot_reads,
        }
    }

    /// Total logged bytes across the clobber/undo/redo log and the v_log.
    pub fn total_log_bytes(&self) -> u64 {
        self.log_bytes + self.vlog_bytes
    }

    /// Total log entries across the clobber/undo/redo log and the v_log.
    pub fn total_log_entries(&self) -> u64 {
        self.log_entries + self.vlog_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = PmemStats::new();
        s.bump(&s.flushes, 3);
        s.bump(&s.fences, 2);
        s.bump(&s.write_bytes, 100);
        let snap = s.snapshot();
        assert_eq!(snap.flushes, 3);
        assert_eq!(snap.fences, 2);
        assert_eq!(snap.write_bytes, 100);
        assert_eq!(snap.reads, 0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let s = PmemStats::new();
        s.bump(&s.flushes, 5);
        let a = s.snapshot();
        s.bump(&s.flushes, 7);
        s.bump(&s.log_bytes, 64);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.flushes, 7);
        assert_eq!(d.log_bytes, 64);
        assert_eq!(d.fences, 0);
    }

    #[test]
    fn snapshot_folds_shard_banks_into_hot_fields() {
        let s = PmemStats::with_banks(3);
        s.bank(0).add(&s.bank(0).writes, 2);
        s.bank(0).add(&s.bank(0).write_bytes, 128);
        s.bank(2).add(&s.bank(2).writes, 1);
        s.bank(2).add(&s.bank(2).flushes, 4);
        s.bump(&s.writes, 10); // e.g. shared-path attribution
        s.bump(&s.allocs, 1);
        let snap = s.snapshot();
        assert_eq!(snap.writes, 13);
        assert_eq!(snap.write_bytes, 128);
        assert_eq!(snap.flushes, 4);
        assert_eq!(snap.allocs, 1);
        let shards = s.shard_snapshots();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].writes, 2);
        assert_eq!(shards[1], StatsSnapshot::default());
        assert_eq!(shards[2].flushes, 4);
    }

    #[test]
    fn per_kind_counters_snapshot_and_delta() {
        let s = PmemStats::new();
        s.bump(&s.clog_flushes, 9);
        s.bump(&s.clog_fences, 1);
        let a = s.snapshot();
        assert_eq!((a.clog_flushes, a.clog_fences), (9, 1));
        s.bump(&s.rlog_flushes, 2);
        s.bump(&s.vlog_fences, 3);
        s.bump(&s.gc_epochs, 1);
        s.bump(&s.gc_fences_saved, 3);
        let d = s.snapshot().delta(&a);
        assert_eq!(d.clog_flushes, 0);
        assert_eq!(d.rlog_flushes, 2);
        assert_eq!(d.vlog_fences, 3);
        assert_eq!(d.gc_epochs, 1);
        assert_eq!(d.gc_fences_saved, 3);
    }

    #[test]
    fn totals_combine_log_and_vlog() {
        let snap = StatsSnapshot {
            log_entries: 3,
            log_bytes: 24,
            vlog_entries: 1,
            vlog_bytes: 280,
            ..Default::default()
        };
        assert_eq!(snap.total_log_entries(), 4);
        assert_eq!(snap.total_log_bytes(), 304);
    }
}
