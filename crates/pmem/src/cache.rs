//! Simulated volatile cache models for [`PoolMode::CrashSim`].
//!
//! Two implementations share the same observable behavior:
//!
//! * [`LineCache`] — the production model: a dense, line-indexed
//!   representation (one dirty/flush-pending bit per cache line plus a
//!   single lazily-allocated shadow buffer). The store path touches no heap
//!   after the first write and no hashing ever happens.
//! * [`RefCache`] — the original `HashMap<line, CacheLine>` model, kept as
//!   the executable specification for equivalence tests and A/B benchmarks
//!   (select it with [`PoolOptions::with_reference_cache`]).
//!
//! Shared semantics (the durability contract both must implement):
//!
//! * A store marks its lines dirty and voids any pending flush on them (a
//!   flush only guarantees the bytes present when it was issued).
//! * A flush marks dirty lines write-back-initiated (`flush_pending`);
//!   durability still requires a fence.
//! * A fence writes back exactly the lines whose flush is still pending and
//!   marks them clean.
//! * On a crash, every modified line draws one survival decision, in
//!   ascending line order: `p_flushed_unfenced` if its flush was pending,
//!   else `p_dirty`. Clean lines equal media and draw nothing. Keeping the
//!   draw order and count identical across implementations is what makes
//!   seeded crashes reproducible regardless of the model in use.
//!
//! [`PoolMode::CrashSim`]: crate::PoolMode::CrashSim
//! [`PoolOptions::with_reference_cache`]: crate::PoolOptions::with_reference_cache

use std::collections::HashMap;

use crate::addr::{lines_for_range, CACHE_LINE};

const LINE: usize = CACHE_LINE as usize;

/// Number of cache lines covered by `[offset, offset+len)` without
/// materializing the range (same geometry as [`lines_for_range`]).
#[inline]
pub(crate) fn line_count(offset: u64, len: u64) -> u64 {
    if len == 0 {
        0
    } else {
        (offset + len - 1) / CACHE_LINE - offset / CACHE_LINE + 1
    }
}

/// The cache implementation selected for a pool.
pub(crate) enum Cache {
    /// Dense bitmap + shadow-buffer model (default).
    Dense(LineCache),
    /// Original hash-map model (reference/testing).
    Reference(RefCache),
}

impl Cache {
    /// `true` when an overlay pass cannot change any read (fast-path check).
    #[inline]
    pub(crate) fn is_clean(&self) -> bool {
        match self {
            Cache::Dense(c) => c.modified == 0,
            Cache::Reference(c) => c.lines.is_empty(),
        }
    }

    /// Applies a store to the cached image of `[offset, offset+len)`.
    pub(crate) fn write(&mut self, offset: u64, data: &[u8], media: &[u8]) {
        match self {
            Cache::Dense(c) => c.write(offset, data, media),
            Cache::Reference(c) => c.write(offset, data, media),
        }
    }

    /// Marks dirty lines in the range as write-back initiated.
    pub(crate) fn flush_range(&mut self, offset: u64, len: u64) {
        match self {
            Cache::Dense(c) => c.flush_range(offset, len),
            Cache::Reference(c) => c.flush_range(offset, len),
        }
    }

    /// Completes all pending write-backs into `media`.
    pub(crate) fn fence(&mut self, media: &mut [u8]) {
        match self {
            Cache::Dense(c) => c.fence(media),
            Cache::Reference(c) => c.fence(media),
        }
    }

    /// Completes pending write-backs for lines starting in `[lo, hi)` byte
    /// offsets; flushes pending outside the range stay pending. Used by the
    /// allocator so its internal fences order only the owning arena's
    /// metadata — a semantics that is identical across engines and shard
    /// counts because it depends only on the (engine-independent) arena
    /// geometry.
    pub(crate) fn fence_range(&mut self, media: &mut [u8], lo: u64, hi: u64) {
        let lo_line = lo / CACHE_LINE;
        let hi_line = hi.div_ceil(CACHE_LINE);
        match self {
            Cache::Dense(c) => c.fence_lines(media, lo_line, hi_line),
            Cache::Reference(c) => c.fence_lines(media, lo_line, hi_line),
        }
    }

    /// Overlays cached line contents onto `buf` (already filled from media).
    pub(crate) fn overlay(&self, offset: u64, buf: &mut [u8]) {
        match self {
            Cache::Dense(c) => c.overlay(offset, buf),
            Cache::Reference(c) => c.overlay(offset, buf),
        }
    }

    /// Visits every modified line in ascending order as
    /// `(line, flush_pending, line_bytes)` — the crash-survival draw order.
    pub(crate) fn for_each_modified(&self, f: impl FnMut(u64, bool, &[u8])) {
        match self {
            Cache::Dense(c) => c.for_each_modified(f),
            Cache::Reference(c) => c.for_each_modified(f),
        }
    }
}

/// Dense line-indexed cache: per-line state bits plus one shadow buffer.
///
/// Invariants:
/// * `flush_pending ⊆ dirty` (a line's flush is voided by a later store and
///   cleared by the fence that writes it back, so it can never outlive
///   dirtiness).
/// * `modified` equals the number of set bits in `dirty`.
/// * For every dirty line, `shadow` holds the current (volatile) contents;
///   for clean lines `shadow` is meaningless and never read.
///
/// Nothing is allocated until the first store; after that, steady-state
/// stores, flushes and fences are allocation-free (the pending-flush list
/// retains its capacity across fences).
#[derive(Default)]
pub(crate) struct LineCache {
    /// Volatile contents of dirty lines, indexed like media. Sized lazily.
    shadow: Vec<u8>,
    /// One bit per line: modified since last write-back.
    dirty: Vec<u64>,
    /// One bit per line: write-back initiated, not yet fenced.
    flush_pending: Vec<u64>,
    /// Lines pushed by flushes, drained by the next fence.
    pending_flushes: Vec<u64>,
    /// Number of set bits in `dirty`.
    modified: usize,
}

#[inline]
fn word_bit(line: u64) -> (usize, u64) {
    ((line / 64) as usize, 1u64 << (line % 64))
}

impl LineCache {
    pub(crate) fn new() -> LineCache {
        LineCache::default()
    }

    fn ensure(&mut self, media_len: usize) {
        if self.shadow.len() != media_len {
            self.shadow.resize(media_len, 0);
            let lines = media_len.div_ceil(LINE);
            let words = lines.div_ceil(64);
            self.dirty.resize(words, 0);
            self.flush_pending.resize(words, 0);
        }
    }

    fn write(&mut self, offset: u64, data: &[u8], media: &[u8]) {
        self.ensure(media.len());
        let len = data.len() as u64;
        for line in lines_for_range(offset, len) {
            let (w, b) = word_bit(line);
            if self.dirty[w] & b == 0 {
                self.dirty[w] |= b;
                self.modified += 1;
                // Seed partially covered boundary lines from media; fully
                // covered lines are about to be overwritten below.
                let start = line * CACHE_LINE;
                if start < offset || start + CACHE_LINE > offset + len {
                    let s = start as usize;
                    self.shadow[s..s + LINE].copy_from_slice(&media[s..s + LINE]);
                }
            }
            // A store after a flush re-dirties the line; the earlier flush
            // no longer guarantees this data's durability.
            self.flush_pending[w] &= !b;
        }
        self.shadow[offset as usize..(offset + len) as usize].copy_from_slice(data);
    }

    fn flush_range(&mut self, offset: u64, len: u64) {
        if self.modified == 0 {
            return;
        }
        for line in lines_for_range(offset, len) {
            let (w, b) = word_bit(line);
            if self.dirty[w] & b != 0 && self.flush_pending[w] & b == 0 {
                self.flush_pending[w] |= b;
                self.pending_flushes.push(line);
            }
        }
    }

    fn fence(&mut self, media: &mut [u8]) {
        let mut pending = std::mem::take(&mut self.pending_flushes);
        for line in pending.drain(..) {
            let (w, b) = word_bit(line);
            if self.flush_pending[w] & b != 0 {
                let s = (line * CACHE_LINE) as usize;
                media[s..s + LINE].copy_from_slice(&self.shadow[s..s + LINE]);
                self.flush_pending[w] &= !b;
                self.dirty[w] &= !b;
                self.modified -= 1;
            }
        }
        // Hand the drained (empty) vector back so its capacity is reused.
        self.pending_flushes = pending;
    }

    fn fence_lines(&mut self, media: &mut [u8], lo_line: u64, hi_line: u64) {
        let mut pending = std::mem::take(&mut self.pending_flushes);
        pending.retain(|&line| {
            if line < lo_line || line >= hi_line {
                return true; // outside the fence's range: stays pending
            }
            let (w, b) = word_bit(line);
            if self.flush_pending[w] & b != 0 {
                let s = (line * CACHE_LINE) as usize;
                media[s..s + LINE].copy_from_slice(&self.shadow[s..s + LINE]);
                self.flush_pending[w] &= !b;
                self.dirty[w] &= !b;
                self.modified -= 1;
            }
            false
        });
        self.pending_flushes = pending;
    }

    fn overlay(&self, offset: u64, buf: &mut [u8]) {
        let len = buf.len() as u64;
        for line in lines_for_range(offset, len) {
            let (w, b) = word_bit(line);
            if self.dirty[w] & b != 0 {
                let line_start = line * CACHE_LINE;
                let copy_start = line_start.max(offset);
                let copy_end = (line_start + CACHE_LINE).min(offset + len);
                buf[(copy_start - offset) as usize..(copy_end - offset) as usize]
                    .copy_from_slice(&self.shadow[copy_start as usize..copy_end as usize]);
            }
        }
    }

    fn for_each_modified(&self, mut f: impl FnMut(u64, bool, &[u8])) {
        for (w, &word) in self.dirty.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let line = w as u64 * 64 + bits.trailing_zeros() as u64;
                bits &= bits - 1;
                let s = (line * CACHE_LINE) as usize;
                let fp = self.flush_pending[w] & (1u64 << (line % 64)) != 0;
                f(line, fp, &self.shadow[s..s + LINE]);
            }
        }
    }
}

/// State of one simulated cache line in the reference model.
struct RefLine {
    data: Vec<u8>,
    /// Modified since last write-back.
    dirty: bool,
    /// A flush was issued but no fence has ordered it yet.
    flush_pending: bool,
}

/// The original hash-map cache model, preserved as the executable
/// specification for [`LineCache`]. Lines written back by a fence stay in
/// the map as clean entries whose bytes equal media (they overlay reads as
/// no-ops and draw nothing on crash), exactly as the seed implementation
/// behaved.
#[derive(Default)]
pub(crate) struct RefCache {
    lines: HashMap<u64, RefLine>,
    pending_flushes: Vec<u64>,
}

impl RefCache {
    pub(crate) fn new() -> RefCache {
        RefCache::default()
    }

    fn write(&mut self, offset: u64, data: &[u8], media: &[u8]) {
        let len = data.len() as u64;
        for line in lines_for_range(offset, len) {
            let line_start = line * CACHE_LINE;
            let cl = self.lines.entry(line).or_insert_with(|| {
                let s = line_start as usize;
                RefLine {
                    data: media[s..s + LINE].to_vec(),
                    dirty: false,
                    flush_pending: false,
                }
            });
            let copy_start = line_start.max(offset);
            let copy_end = (line_start + CACHE_LINE).min(offset + len);
            cl.data[(copy_start - line_start) as usize..(copy_end - line_start) as usize]
                .copy_from_slice(
                    &data[(copy_start - offset) as usize..(copy_end - offset) as usize],
                );
            cl.dirty = true;
            cl.flush_pending = false;
        }
    }

    fn flush_range(&mut self, offset: u64, len: u64) {
        for line in lines_for_range(offset, len) {
            if let Some(cl) = self.lines.get_mut(&line) {
                if cl.dirty && !cl.flush_pending {
                    cl.flush_pending = true;
                    self.pending_flushes.push(line);
                }
            }
        }
    }

    fn fence(&mut self, media: &mut [u8]) {
        for line in self.pending_flushes.drain(..) {
            if let Some(cl) = self.lines.get_mut(&line) {
                if cl.flush_pending {
                    let s = (line * CACHE_LINE) as usize;
                    media[s..s + LINE].copy_from_slice(&cl.data);
                    cl.dirty = false;
                    cl.flush_pending = false;
                }
            }
        }
    }

    fn fence_lines(&mut self, media: &mut [u8], lo_line: u64, hi_line: u64) {
        let mut pending = std::mem::take(&mut self.pending_flushes);
        pending.retain(|&line| {
            if line < lo_line || line >= hi_line {
                return true;
            }
            if let Some(cl) = self.lines.get_mut(&line) {
                if cl.flush_pending {
                    let s = (line * CACHE_LINE) as usize;
                    media[s..s + LINE].copy_from_slice(&cl.data);
                    cl.dirty = false;
                    cl.flush_pending = false;
                }
            }
            false
        });
        self.pending_flushes = pending;
    }

    fn overlay(&self, offset: u64, buf: &mut [u8]) {
        let len = buf.len() as u64;
        for line in lines_for_range(offset, len) {
            if let Some(cl) = self.lines.get(&line) {
                let line_start = line * CACHE_LINE;
                let copy_start = line_start.max(offset);
                let copy_end = (line_start + CACHE_LINE).min(offset + len);
                let src =
                    &cl.data[(copy_start - line_start) as usize..(copy_end - line_start) as usize];
                buf[(copy_start - offset) as usize..(copy_end - offset) as usize]
                    .copy_from_slice(src);
            }
        }
    }

    fn for_each_modified(&self, mut f: impl FnMut(u64, bool, &[u8])) {
        // Deterministic iteration order: sort lines. Clean entries draw
        // nothing, matching the dense model where they simply don't exist.
        let mut lines: Vec<_> = self.lines.iter().collect();
        lines.sort_by_key(|(line, _)| **line);
        for (line, cl) in lines {
            if cl.flush_pending || cl.dirty {
                f(*line, cl.flush_pending, &cl.data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(media_len: usize) -> (Vec<u8>, Cache, Vec<u8>, Cache) {
        let media: Vec<u8> = (0..media_len).map(|i| i as u8).collect();
        (
            media.clone(),
            Cache::Dense(LineCache::new()),
            media,
            Cache::Reference(RefCache::new()),
        )
    }

    fn read(media: &[u8], cache: &Cache, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = media[offset as usize..offset as usize + len].to_vec();
        cache.overlay(offset, &mut buf);
        buf
    }

    #[test]
    fn line_count_matches_lines_for_range() {
        for offset in [0u64, 1, 63, 64, 65, 127, 4096] {
            for len in [0u64, 1, 63, 64, 65, 128, 130, 1000] {
                assert_eq!(
                    line_count(offset, len),
                    lines_for_range(offset, len).count() as u64,
                    "offset={offset} len={len}"
                );
            }
        }
    }

    #[test]
    fn models_agree_on_write_flush_fence_sequences() {
        let (mut m1, mut dense, mut m2, mut reference) = both(64 * 64);
        let script: &[(&str, u64, u64)] = &[
            ("w", 10, 30),
            ("w", 60, 10),
            ("f", 0, 128),
            ("w", 70, 4),
            ("s", 0, 0),
            ("w", 640, 64),
            ("f", 640, 64),
            ("s", 0, 0),
            ("w", 100, 200),
            ("f", 100, 200),
        ];
        for &(op, a, b) in script {
            match op {
                "w" => {
                    let data: Vec<u8> = (0..b).map(|i| (a + i) as u8).collect();
                    dense.write(a, &data, &m1);
                    reference.write(a, &data, &m2);
                }
                "f" => {
                    dense.flush_range(a, b);
                    reference.flush_range(a, b);
                }
                "s" => {
                    dense.fence(&mut m1);
                    reference.fence(&mut m2);
                }
                _ => unreachable!(),
            }
            assert_eq!(m1, m2, "durable media diverged after {op}({a},{b})");
            assert_eq!(
                read(&m1, &dense, 0, m1.len()),
                read(&m2, &reference, 0, m2.len()),
                "visible bytes diverged after {op}({a},{b})"
            );
        }
        // Crash draw order and flags must agree too.
        let mut d: Vec<(u64, bool, Vec<u8>)> = Vec::new();
        let mut r: Vec<(u64, bool, Vec<u8>)> = Vec::new();
        dense.for_each_modified(|l, fp, bytes| d.push((l, fp, bytes.to_vec())));
        reference.for_each_modified(|l, fp, bytes| r.push((l, fp, bytes.to_vec())));
        assert_eq!(d, r);
    }

    #[test]
    fn fence_only_writes_back_still_pending_lines() {
        let (mut media, mut dense, ..) = both(64 * 4);
        dense.write(0, &[0xAA; 8], &media);
        dense.flush_range(0, 8);
        dense.write(0, &[0xBB; 8], &media); // voids the pending flush
        dense.fence(&mut media);
        assert_ne!(&media[0..8], &[0xBB; 8], "voided flush must not persist");
        assert_eq!(read(&media, &dense, 0, 8), vec![0xBB; 8]);
    }

    #[test]
    fn fence_range_leaves_out_of_range_flushes_pending() {
        let (mut m1, mut dense, mut m2, mut reference) = both(64 * 8);
        for cache_media in [(&mut dense, &mut m1), (&mut reference, &mut m2)] {
            let (cache, media) = cache_media;
            cache.write(0, &[0x11; 8], media);
            cache.write(256, &[0x22; 8], media);
            cache.flush_range(0, 8);
            cache.flush_range(256, 8);
            // Fence only the first line's range.
            cache.fence_range(media, 0, 64);
            assert_eq!(&media[0..8], &[0x11; 8], "in-range flush persisted");
            let untouched: Vec<u8> = (0u8..8).collect();
            assert_eq!(
                &media[256..264],
                &untouched[..],
                "out-of-range stays pending"
            );
            // A later full fence completes the survivor.
            cache.fence(media);
            assert_eq!(&media[256..264], &[0x22; 8]);
        }
        assert_eq!(m1, m2, "models agree on range-fence semantics");
    }

    #[test]
    fn dense_clean_lines_are_dropped_from_membership() {
        let (mut media, mut dense, ..) = both(64 * 4);
        dense.write(64, &[1; 64], &media);
        dense.flush_range(64, 64);
        dense.fence(&mut media);
        assert!(dense.is_clean(), "fenced line must leave the cache");
    }
}
