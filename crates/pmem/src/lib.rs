//! Simulated persistent memory (NVM) substrate for the Clobber-NVM
//! reproduction.
//!
//! Real persistent memory (e.g. Intel Optane DC PMM) exposes storage through
//! the load/store interface, with a volatile CPU cache in front of it: a
//! store is durable only once its cache line has been written back (via
//! `clwb`/`clflush`) and ordered (via `sfence`). This crate models exactly
//! that contract in software:
//!
//! * [`PmemPool`] is a byte-addressable pool with a persistent *media* array
//!   and, in [`PoolMode::CrashSim`], a simulated volatile cache in front of
//!   it. Writes land in the cache; [`PmemPool::flush`] initiates write-back;
//!   [`PmemPool::fence`] makes previously flushed lines durable.
//! * [`PmemPool::crash`] simulates a power failure: flushed-but-unfenced and
//!   dirty-unflushed lines survive only with a configurable (seeded)
//!   probability, everything else is dropped — reproducing torn states.
//! * [`alloc`] provides a crash-consistent persistent heap allocator with a
//!   micro write-ahead redo record, in the spirit of PMDK's allocator —
//!   sharded into per-thread arenas with thread-local reservation
//!   magazines so transactions scale past a single allocator lock.
//! * [`ulog`] provides a PMDK-style undo-log buffer, the primitive on which
//!   Clobber-NVM's `clobber_log` is built (paper §4.2).
//! * [`stats::PmemStats`] counts every persistence event (flushes, fences,
//!   media bytes) — the quantities the paper's evaluation attributes
//!   performance to.
//! * [`fault::FaultPlan`] arms programmable fault injection on a pool:
//!   trip-point crashes at any chosen persist event, torn multi-line
//!   stores, seeded bit corruption, and transient read faults — the
//!   substrate for exhaustive crash-point sweeps.
//! * [`PmemPool::set_tracer`] attaches a [`Tracer`] (from `clobber-trace`):
//!   every store/flush/fence is recorded as a typed event stamped with its
//!   persist-event sequence number, under the same fault-mutex acquisition
//!   that assigns it — so the recorded stream is the pool-wide total order,
//!   identical at every [`PoolConcurrency`] engine and shard count.
//!
//! # Example
//!
//! ```
//! use clobber_pmem::{PmemPool, PoolOptions};
//!
//! # fn main() -> Result<(), clobber_pmem::PmemError> {
//! let pool = PmemPool::create(PoolOptions::crash_sim(1 << 20))?;
//! let addr = pool.alloc(64)?;
//! pool.write_u64(addr, 42)?;
//! pool.persist(addr, 8)?; // flush + fence: now durable
//! assert_eq!(pool.read_u64(addr)?, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod alloc;
pub(crate) mod cache;
pub mod crash;
pub mod fault;
pub mod pool;
pub(crate) mod shard;
pub mod stats;
pub mod ulog;

pub use addr::{PAddr, CACHE_LINE};
pub use alloc::HeapReport;
pub use crash::CrashConfig;
pub use fault::FaultPlan;
pub use pool::{
    CacheImpl, PmemError, PmemPool, PoolConcurrency, PoolMode, PoolOptions, DEFAULT_ARENAS,
};
pub use stats::{PmemStats, ShardCounters, StatsSnapshot};
pub use ulog::{LogFormat, LogKind, LogWriter, Ulog};

// Re-exported so pool users can attach tracers and decode traces without a
// separate `clobber-trace` dependency.
pub use clobber_trace::{EventKind, Trace, TraceEvent, Tracer};
