//! Power-failure simulation policy.

/// Controls which volatile cache lines survive a simulated power failure.
///
/// On real hardware, a line that was flushed (`clwb`) but not yet ordered by
/// an `sfence` has *probably* reached the persistence domain, while a dirty
/// line that was never flushed survives only if the cache happened to evict
/// it. Both survival decisions are made per line with a seeded RNG so crash
/// tests are reproducible.
///
/// # Example
///
/// ```
/// use clobber_pmem::CrashConfig;
///
/// let cfg = CrashConfig::with_seed(7);
/// assert!(cfg.p_flushed_unfenced > cfg.p_dirty);
/// let adversarial = CrashConfig::drop_all(1);
/// assert_eq!(adversarial.p_dirty, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashConfig {
    /// Probability that a flushed-but-unfenced line reaches media.
    ///
    /// Contract: must lie in `[0.0, 1.0]`. Constructors clamp into that
    /// range, and `PmemPool::crash` clamps again before drawing, so an
    /// out-of-range value written directly into the field behaves like the
    /// nearest bound (NaN behaves like `0.0`).
    pub p_flushed_unfenced: f64,
    /// Probability that a dirty, never-flushed line is evicted to media
    /// before the failure. Same `[0.0, 1.0]` contract as
    /// [`p_flushed_unfenced`](Self::p_flushed_unfenced).
    pub p_dirty: f64,
    /// RNG seed for the per-line survival decisions.
    pub seed: u64,
}

impl CrashConfig {
    /// Builds a config from explicit survival probabilities, clamping each
    /// into `[0.0, 1.0]` (NaN clamps to `0.0`).
    pub fn new(p_flushed_unfenced: f64, p_dirty: f64, seed: u64) -> Self {
        CrashConfig {
            p_flushed_unfenced: clamp_probability(p_flushed_unfenced),
            p_dirty: clamp_probability(p_dirty),
            seed,
        }
    }

    /// Default survival probabilities with the given seed: flushed-unfenced
    /// lines survive 50 % of the time, dirty lines 25 %.
    pub fn with_seed(seed: u64) -> Self {
        CrashConfig {
            p_flushed_unfenced: 0.5,
            p_dirty: 0.25,
            seed,
        }
    }

    /// Adversarial policy: nothing that was not fenced survives.
    ///
    /// This maximizes the amount of state recovery has to reconstruct.
    pub fn drop_all(seed: u64) -> Self {
        CrashConfig {
            p_flushed_unfenced: 0.0,
            p_dirty: 0.0,
            seed,
        }
    }

    /// Pathological policy: every write survives, even unflushed ones.
    ///
    /// Useful for testing that recovery also tolerates the *lucky* outcome,
    /// where uncommitted writes happen to be durable.
    pub fn keep_all(seed: u64) -> Self {
        CrashConfig {
            p_flushed_unfenced: 1.0,
            p_dirty: 1.0,
            seed,
        }
    }
}

impl CrashConfig {
    /// Returns a copy with both probabilities clamped into `[0.0, 1.0]`.
    ///
    /// The fields are public, so a caller can store any `f64`;
    /// `PmemPool::crash` normalizes through this before drawing survival
    /// decisions.
    pub fn clamped(&self) -> Self {
        CrashConfig::new(self.p_flushed_unfenced, self.p_dirty, self.seed)
    }
}

/// Clamps `p` into `[0.0, 1.0]`; NaN maps to `0.0`.
fn clamp_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig::with_seed(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_with_seed_zero() {
        assert_eq!(CrashConfig::default(), CrashConfig::with_seed(0));
    }

    #[test]
    fn drop_all_zeroes_probabilities() {
        let c = CrashConfig::drop_all(3);
        assert_eq!(c.p_flushed_unfenced, 0.0);
        assert_eq!(c.p_dirty, 0.0);
        assert_eq!(c.seed, 3);
    }

    #[test]
    fn keep_all_maximizes_probabilities() {
        let c = CrashConfig::keep_all(9);
        assert_eq!(c.p_flushed_unfenced, 1.0);
        assert_eq!(c.p_dirty, 1.0);
    }

    #[test]
    fn new_clamps_out_of_range_probabilities() {
        let c = CrashConfig::new(1.5, -0.25, 4);
        assert_eq!(c.p_flushed_unfenced, 1.0);
        assert_eq!(c.p_dirty, 0.0);
        assert_eq!(c.seed, 4);
    }

    #[test]
    fn clamped_normalizes_direct_field_writes() {
        let c = CrashConfig {
            p_flushed_unfenced: f64::NAN,
            p_dirty: 7.0,
            seed: 1,
        };
        let n = c.clamped();
        assert_eq!(n.p_flushed_unfenced, 0.0);
        assert_eq!(n.p_dirty, 1.0);
        assert_eq!(n.seed, 1);
    }

    #[test]
    fn clamped_is_identity_in_range() {
        let c = CrashConfig::with_seed(11);
        assert_eq!(c.clamped(), c);
    }
}
