//! Programmable media-fault injection.
//!
//! A [`FaultPlan`] armed on a [`PmemPool`](crate::PmemPool) turns the pool
//! into a fault-injection harness: every *persist event* (store, flush, or
//! fence issued through the pool API) advances a counter, and the plan can
//! direct the pool to fail at a chosen event, tear a multi-line store, or
//! serve a bounded burst of transient read faults. Crash-sweep tests use the
//! counter to enumerate every persist event a workload issues and then replay
//! the workload, crashing at each event in turn.
//!
//! Semantics after the trip point fires ("dead pool"): the pool models total
//! power loss — every subsequent read, write, flush, or allocator call
//! returns [`PmemError::InjectedCrash`](crate::PmemError::InjectedCrash), and
//! fences are silently lost. The test harness then calls
//! [`PmemPool::crash`](crate::PmemPool::crash) to materialize the surviving
//! media and reopen.

/// A programmable fault schedule for one pool.
///
/// Arm with [`PmemPool::arm_faults`](crate::PmemPool::arm_faults); disarm
/// with [`PmemPool::disarm_faults`](crate::PmemPool::disarm_faults). While a
/// plan is armed, each store/flush/fence is assigned a 0-based *persist event*
/// index in issue order.
///
/// # Example
///
/// ```
/// use clobber_pmem::{FaultPlan, PmemError, PmemPool, PoolOptions, PAddr};
///
/// # fn main() -> Result<(), PmemError> {
/// let pool = PmemPool::create(PoolOptions::crash_sim(1 << 20))?;
/// pool.arm_faults(FaultPlan::crash_at(1));
/// let a = PAddr::new(4096);
/// pool.write_u64(a, 7)?; // event 0: succeeds
/// let err = pool.write_u64(a, 8).unwrap_err(); // event 1: trips
/// assert_eq!(err, PmemError::InjectedCrash { event: 1 });
/// assert!(pool.write_u64(a, 9).is_err(), "pool is dead after the trip");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Persist event (0-based) at which the pool dies with
    /// [`PmemError::InjectedCrash`](crate::PmemError::InjectedCrash).
    /// `None` counts events without ever tripping.
    pub trip_at_event: Option<u64>,
    /// When the tripping event is a store spanning more than one cache line,
    /// tear it: a seeded prefix of its lines reaches media durably (as if
    /// evicted at the instant of failure) while the rest is lost.
    pub torn_store: bool,
    /// Number of upcoming reads that fail with
    /// [`PmemError::TransientMediaFault`](crate::PmemError::TransientMediaFault)
    /// before reads start succeeding again. Models recoverable media errors.
    pub transient_read_faults: u64,
    /// Seed for torn-store prefix selection.
    pub seed: u64,
}

impl FaultPlan {
    /// Counts persist events without injecting any fault.
    ///
    /// Use this to measure how many events a workload issues, then replay
    /// with [`FaultPlan::crash_at`] for each index.
    pub fn count_only() -> Self {
        FaultPlan {
            trip_at_event: None,
            torn_store: false,
            transient_read_faults: 0,
            seed: 0,
        }
    }

    /// Trips the pool at persist event `event` (0-based).
    pub fn crash_at(event: u64) -> Self {
        FaultPlan {
            trip_at_event: Some(event),
            ..Self::count_only()
        }
    }

    /// Trips at `event`, and if that event is a multi-line store, tears it:
    /// a seeded prefix of its lines still reaches media.
    pub fn torn_crash_at(event: u64, seed: u64) -> Self {
        FaultPlan {
            trip_at_event: Some(event),
            torn_store: true,
            transient_read_faults: 0,
            seed,
        }
    }

    /// Fails the next `n` reads transiently; reads succeed again afterwards.
    pub fn transient_reads(n: u64) -> Self {
        FaultPlan {
            transient_read_faults: n,
            ..Self::count_only()
        }
    }
}

/// Live injector state behind the pool's fault mutex.
///
/// The attached [`Tracer`](clobber_trace::Tracer) lives here too: persist
/// events are recorded under the same lock acquisition that assigns their
/// sequence number, so the recorded order *is* the pool-wide total order.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    /// The armed plan, if any.
    pub(crate) plan: Option<FaultPlan>,
    /// Persist events observed since arming (or, with a tracer attached and
    /// no plan, since the tracer was attached).
    pub(crate) events: u64,
    /// Event index at which the pool tripped, once it has.
    pub(crate) tripped_at: Option<u64>,
    /// Transient read faults still to be served.
    pub(crate) transient_remaining: u64,
    /// Attached event tracer, if tracing is enabled.
    pub(crate) tracer: Option<std::sync::Arc<clobber_trace::Tracer>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        assert_eq!(FaultPlan::count_only().trip_at_event, None);
        assert_eq!(FaultPlan::crash_at(5).trip_at_event, Some(5));
        let torn = FaultPlan::torn_crash_at(3, 9);
        assert!(torn.torn_store);
        assert_eq!(torn.seed, 9);
        assert_eq!(FaultPlan::transient_reads(2).transient_read_faults, 2);
    }
}
