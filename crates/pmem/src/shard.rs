//! The sharded pool engine: address-range shards, each behind its own lock.
//!
//! The pool's media and simulated cache are partitioned into contiguous,
//! cache-line-aligned byte ranges. Operations touching one range take one
//! shard lock; operations spanning a boundary visit the overlapping shards
//! in ascending address order. Because shard bases are line-aligned, a line
//! never spans shards, and the ascending-shard × ascending-local-line walk
//! used by [`ShardedPool::crash_media`] reproduces exactly the global
//! ascending line order of the single-lock engine — which is what keeps
//! seeded crash outcomes bit-identical across engines and shard counts.
//!
//! Ordering model (documented on [`PoolConcurrency`]): fault injection,
//! persist-event numbering, and event tracing live *outside* the shards, on
//! the pool's single fault mutex, consulted before any shard is touched.
//! Shards therefore never need to agree on an event order among themselves —
//! and a trace recorded under that mutex is the same pool-wide total order
//! at every shard count, which is what makes golden traces engine-invariant.
//!
//! `SingleThread` mode reuses this engine with one shard held in an
//! owner-checked [`UnsafeCell`] instead of a mutex: the first thread to
//! touch the pool claims it with a CAS on a thread-local token, and every
//! later access checks the claim (and panics on a foreign thread) before
//! the cell is dereferenced — so the unsynchronized access stays sound.
//!
//! Allocator state is per-arena: each arena's volatile [`ArenaMirror`] sits
//! behind its own mutex, and an allocator operation locks that mirror plus
//! only the shards overlapping the arena's byte span (mirror first, then
//! shards ascending — at most one mirror per thread, so threads working
//! disjoint arenas never contend and the global acquisition order stays
//! acyclic even when arena boundaries share a shard).
//!
//! Hot-path statistics go to per-shard [`ShardCounters`] banks owned by the
//! shard lock holder; [`PmemStats::snapshot`] folds them back into pool
//! totals. Operation counts attribute to the shard holding the first byte;
//! flush line counts attribute per shard (they sum to the same geometry the
//! global engine reports); fences attribute to shard 0, and allocator
//! hot-path credits to the first shard of the owning arena's span.
//!
//! [`PoolConcurrency`]: crate::PoolConcurrency
//! [`ShardCounters`]: crate::stats::ShardCounters
//! [`PmemStats::snapshot`]: crate::PmemStats::snapshot

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::addr::{align_up, CACHE_LINE};
use crate::alloc::ArenaMirror;
use crate::pool::{CacheImpl, HeapGeometry, MediaCache, PoolMode, RawPmem};
use crate::stats::PmemStats;

thread_local! {
    /// Address-identity token for the `SingleThread` owner check: the TLS
    /// slot's address is unique per live thread and far cheaper to read
    /// than `std::thread::current()`.
    static THREAD_TOKEN: u8 = const { 0 };
}

fn thread_token() -> usize {
    THREAD_TOKEN.with(|t| t as *const u8 as usize)
}

/// One address-range shard: a base offset plus its media/cache span.
pub(crate) struct Shard {
    /// Pool-global byte offset where this shard's range starts (multiple of
    /// [`CACHE_LINE`]).
    base: u64,
    mc: MediaCache,
}

impl Shard {
    /// One past this shard's last pool-global byte.
    fn end(&self) -> u64 {
        self.base + self.mc.media.len() as u64
    }

    /// Reads from pool-global `offset` (caller guarantees containment).
    fn read(&self, offset: u64, buf: &mut [u8]) {
        self.mc.read_raw(offset - self.base, buf);
    }

    fn write(&mut self, offset: u64, data: &[u8], mode: PoolMode) {
        self.mc.write_raw(offset - self.base, data, mode);
    }

    /// Flush line accounting is translation-invariant because `base` is
    /// line-aligned, so the local count equals the global geometry.
    fn flush(&mut self, offset: u64, len: u64, mode: PoolMode) -> u64 {
        self.mc.flush_raw(offset - self.base, len, mode)
    }

    fn fence(&mut self) {
        self.mc.fence_raw();
    }

    /// Orders pending flushes within pool-global `[lo, hi)` (clipped to
    /// this shard by the caller).
    fn fence_range(&mut self, lo: u64, hi: u64) {
        self.mc.fence_range_raw(lo - self.base, hi - self.base);
    }
}

/// A shard slot: locked for `Sharded`, owner-checked for `SingleThread`.
enum ShardCell {
    Locked(Mutex<Shard>),
    Unsync(UnsafeCell<Shard>),
}

// SAFETY: the `Unsync` variant is only dereferenced by
// `ShardedPool::with_shard`/`with_arena_raw` after `check_owner` has
// established that the calling thread holds the pool's exclusive ownership
// claim, so no two threads can alias the cell's contents.
unsafe impl Sync for ShardCell {}

/// The sharded engine: contiguous address-range shards plus one allocator
/// mirror lock per arena.
///
/// Lock order, where multiple locks are held: one arena mirror → the shards
/// overlapping that arena's span, ascending. The pool-level fault mutex is
/// never held across a shard acquisition.
pub(crate) struct ShardedPool {
    cells: Box<[ShardCell]>,
    /// Bytes per shard (multiple of [`CACHE_LINE`]); the last shard holds
    /// the remainder.
    shard_bytes: u64,
    capacity: u64,
    /// Volatile allocator mirrors, one per arena — allocator paths lock the
    /// owning arena's mirror first, then the shards its span overlaps,
    /// giving that arena's metadata updates global-lock atomicity.
    mirrors: Box<[Mutex<ArenaMirror>]>,
    /// `[lo, hi)` byte span of each arena (metadata + heap).
    arena_spans: Vec<(u64, u64)>,
    /// `SingleThread` ownership claim (0 = unclaimed, else the owner's
    /// thread token). Unused when all cells are `Locked`.
    owner: AtomicUsize,
}

impl ShardedPool {
    pub(crate) fn new(
        media: Vec<u8>,
        cache_impl: CacheImpl,
        shards: usize,
        unsync: bool,
        geom: &HeapGeometry,
    ) -> ShardedPool {
        let capacity = media.len() as u64;
        let mirrors: Vec<Mutex<ArenaMirror>> = geom
            .arenas()
            .iter()
            .map(|&l| Mutex::new(ArenaMirror::rebuild(&media, l)))
            .collect();
        let arena_spans = geom.arenas().iter().map(|l| l.span()).collect();
        let want = shards.clamp(1, 4096) as u64;
        let shard_bytes = align_up(capacity.div_ceil(want).max(1), CACHE_LINE);
        let mut cells = Vec::new();
        let mut rest = media;
        let mut base = 0u64;
        while !rest.is_empty() {
            let take = (shard_bytes as usize).min(rest.len());
            let tail = rest.split_off(take);
            let shard = Shard {
                base,
                mc: MediaCache::new(rest, cache_impl),
            };
            cells.push(if unsync {
                ShardCell::Unsync(UnsafeCell::new(shard))
            } else {
                ShardCell::Locked(Mutex::new(shard))
            });
            base += take as u64;
            rest = tail;
        }
        ShardedPool {
            cells: cells.into_boxed_slice(),
            shard_bytes,
            capacity,
            mirrors: mirrors.into_boxed_slice(),
            arena_spans,
            owner: AtomicUsize::new(0),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// Verifies (or establishes) this thread's `SingleThread` ownership.
    ///
    /// # Panics
    ///
    /// Panics when a second thread touches a `SingleThread` pool.
    fn check_owner(&self) {
        let me = thread_token();
        // A relaxed load suffices for the owner re-check: only this thread
        // can have stored `me`.
        let cur = self.owner.load(Ordering::Relaxed);
        if cur == me {
            return;
        }
        if cur == 0
            && self
                .owner
                .compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            return;
        }
        panic!("PoolConcurrency::SingleThread pool accessed from a second thread");
    }

    /// Runs `f` with exclusive access to shard `idx`.
    fn with_shard<R>(&self, idx: usize, f: impl FnOnce(&mut Shard) -> R) -> R {
        match &self.cells[idx] {
            ShardCell::Locked(m) => f(&mut m.lock()),
            ShardCell::Unsync(c) => {
                self.check_owner();
                // SAFETY: `check_owner` established that this thread holds
                // the pool's exclusive claim, so no other reference to the
                // shard exists (see `ShardCell`'s `Sync` justification).
                f(unsafe { &mut *c.get() })
            }
        }
    }

    /// Shard index containing `offset`, clamped so a zero-length access at
    /// `offset == capacity` still lands on the last shard.
    fn shard_index(&self, offset: u64) -> usize {
        ((offset / self.shard_bytes) as usize).min(self.cells.len() - 1)
    }

    /// Visits each `(shard_index, range_start, range_len)` piece of
    /// `[offset, offset+len)` in ascending address order.
    fn for_each_range(&self, offset: u64, len: u64, mut f: impl FnMut(usize, u64, u64)) {
        let end = offset + len;
        let mut at = offset;
        while at < end {
            let idx = (at / self.shard_bytes) as usize;
            let stop = ((idx as u64 + 1) * self.shard_bytes).min(end);
            f(idx, at, stop - at);
            at = stop;
        }
    }

    pub(crate) fn read(&self, offset: u64, buf: &mut [u8], stats: &PmemStats) {
        if buf.is_empty() {
            let idx = self.shard_index(offset);
            self.with_shard(idx, |_| {
                let b = stats.bank(idx);
                b.add(&b.reads, 1);
            });
            return;
        }
        let mut first = true;
        self.for_each_range(offset, buf.len() as u64, |idx, at, len| {
            self.with_shard(idx, |sh| {
                if first {
                    let b = stats.bank(idx);
                    b.add(&b.reads, 1);
                    b.add(&b.read_bytes, buf.len() as u64);
                }
                let s = (at - offset) as usize;
                sh.read(at, &mut buf[s..s + len as usize]);
            });
            first = false;
        });
    }

    pub(crate) fn write(&self, offset: u64, data: &[u8], mode: PoolMode, stats: &PmemStats) {
        if data.is_empty() {
            let idx = self.shard_index(offset);
            self.with_shard(idx, |_| {
                let b = stats.bank(idx);
                b.add(&b.writes, 1);
            });
            return;
        }
        let mut first = true;
        self.for_each_range(offset, data.len() as u64, |idx, at, len| {
            self.with_shard(idx, |sh| {
                if first {
                    let b = stats.bank(idx);
                    b.add(&b.writes, 1);
                    b.add(&b.write_bytes, data.len() as u64);
                }
                let s = (at - offset) as usize;
                sh.write(at, &data[s..s + len as usize], mode);
            });
            first = false;
        });
    }

    pub(crate) fn flush(&self, offset: u64, len: u64, mode: PoolMode, stats: &PmemStats) {
        self.for_each_range(offset, len, |idx, at, l| {
            self.with_shard(idx, |sh| {
                let n = sh.flush(at, l, mode);
                let b = stats.bank(idx);
                b.add(&b.flushes, n);
            });
        });
    }

    pub(crate) fn fence(&self, mode: PoolMode, stats: &PmemStats) {
        if mode != PoolMode::CrashSim {
            // Nothing to write back; only the counter moves.
            self.with_shard(0, |_| {
                let b = stats.bank(0);
                b.add(&b.fences, 1);
            });
            return;
        }
        for idx in 0..self.cells.len() {
            self.with_shard(idx, |sh| {
                if idx == 0 {
                    let b = stats.bank(0);
                    b.add(&b.fences, 1);
                }
                sh.fence();
            });
        }
    }

    /// Writes straight to durable media, bypassing the cache (torn-store
    /// injection).
    pub(crate) fn media_write(&self, offset: u64, data: &[u8]) {
        self.for_each_range(offset, data.len() as u64, |idx, at, len| {
            self.with_shard(idx, |sh| {
                let local = (at - sh.base) as usize;
                let s = (at - offset) as usize;
                sh.mc.media[local..local + len as usize]
                    .copy_from_slice(&data[s..s + len as usize]);
            });
        });
    }

    /// XORs one durable media byte (bit-corruption injection).
    pub(crate) fn media_xor(&self, byte: u64, mask: u8) {
        let idx = self.shard_index(byte);
        self.with_shard(idx, |sh| {
            sh.mc.media[(byte - sh.base) as usize] ^= mask;
        });
    }

    /// Concatenated durable media, ascending shard order.
    pub(crate) fn media_snapshot(&self) -> Vec<u8> {
        let mut media = Vec::with_capacity(self.capacity as usize);
        for idx in 0..self.cells.len() {
            self.with_shard(idx, |sh| media.extend_from_slice(&sh.mc.media));
        }
        media
    }

    /// Post-crash media image: durable bytes plus every modified line that
    /// `draw` lets survive. Ascending shard order × ascending local line
    /// order equals the global ascending line order, so `draw` sees the
    /// same sequence the single-lock engine produces.
    pub(crate) fn crash_media(&self, draw: &mut dyn FnMut(bool) -> bool) -> Vec<u8> {
        let mut media = Vec::with_capacity(self.capacity as usize);
        for idx in 0..self.cells.len() {
            self.with_shard(idx, |sh| {
                let start = media.len();
                media.extend_from_slice(&sh.mc.media);
                sh.mc.cache.for_each_modified(|line, flush_pending, bytes| {
                    if draw(flush_pending) {
                        let s = start + (line * CACHE_LINE) as usize;
                        media[s..s + CACHE_LINE as usize].copy_from_slice(bytes);
                    }
                });
            });
        }
        media
    }

    /// Runs `f` with arena `idx`'s mirror locked (no shards).
    pub(crate) fn with_arena_mirror<R>(
        &self,
        idx: usize,
        f: impl FnOnce(&mut ArenaMirror) -> R,
    ) -> R {
        f(&mut self.mirrors[idx].lock())
    }

    /// Runs `f` with arena `idx`'s mirror plus the shards overlapping the
    /// arena's byte span held (mirror first, then shards ascending),
    /// exposing those shards as one [`RawPmem`] — the allocator path.
    /// Allocator operations on arenas with disjoint shard coverage run
    /// fully in parallel.
    pub(crate) fn with_arena_raw<R>(
        &self,
        idx: usize,
        stats: &PmemStats,
        f: impl FnOnce(&mut ArenaMirror, &mut dyn RawPmem) -> R,
    ) -> R {
        let mut mirror = self.mirrors[idx].lock();
        let (lo, hi) = self.arena_spans[idx];
        let first = self.shard_index(lo);
        let last = self.shard_index(hi - 1);
        let mut guards: Vec<ShardGuardMut<'_>> = Vec::with_capacity(last - first + 1);
        for cell in self.cells[first..=last].iter() {
            guards.push(match cell {
                ShardCell::Locked(m) => ShardGuardMut::Locked(m.lock()),
                ShardCell::Unsync(c) => {
                    self.check_owner();
                    // SAFETY: exclusive ownership established by
                    // `check_owner`; each cell is visited once, so the
                    // collected `&mut`s never alias.
                    ShardGuardMut::Unsync(unsafe { &mut *c.get() })
                }
            });
        }
        let mut raw = ShardedRaw {
            guards,
            first_shard: first,
            span: (lo, hi),
            shard_bytes: self.shard_bytes,
            stats,
        };
        f(&mut mirror, &mut raw)
    }
}

enum ShardGuardMut<'a> {
    Locked(parking_lot::MutexGuard<'a, Shard>),
    Unsync(&'a mut Shard),
}

impl ShardGuardMut<'_> {
    fn shard(&mut self) -> &mut Shard {
        match self {
            ShardGuardMut::Locked(g) => g,
            ShardGuardMut::Unsync(s) => s,
        }
    }
}

/// [`RawPmem`] over the shards covering one arena's span (those locks
/// held). Offsets stay pool-global; `first_shard` translates them to guard
/// indices. Hot-path credits go to the first covered shard's bank, which
/// the held locks make safe to write.
struct ShardedRaw<'a> {
    guards: Vec<ShardGuardMut<'a>>,
    /// Global index of `guards[0]`.
    first_shard: usize,
    /// The owning arena's `[lo, hi)` span — the fence scope.
    span: (u64, u64),
    shard_bytes: u64,
    stats: &'a PmemStats,
}

impl ShardedRaw<'_> {
    fn for_each_range(&mut self, offset: u64, len: u64, mut f: impl FnMut(&mut Shard, u64, u64)) {
        let end = offset + len;
        let mut at = offset;
        while at < end {
            let idx = (at / self.shard_bytes) as usize;
            let stop = ((idx as u64 + 1) * self.shard_bytes).min(end);
            let sh = self.guards[idx - self.first_shard].shard();
            f(sh, at, stop - at);
            at = stop;
        }
    }
}

impl RawPmem for ShardedRaw<'_> {
    fn read_raw(&mut self, offset: u64, buf: &mut [u8]) {
        let start = offset;
        self.for_each_range(offset, buf.len() as u64, |sh, at, len| {
            let s = (at - start) as usize;
            sh.read(at, &mut buf[s..s + len as usize]);
        });
    }

    fn write_raw(&mut self, offset: u64, data: &[u8], mode: PoolMode) {
        let start = offset;
        self.for_each_range(offset, data.len() as u64, |sh, at, len| {
            let s = (at - start) as usize;
            sh.write(at, &data[s..s + len as usize], mode);
        });
    }

    fn flush_raw(&mut self, offset: u64, len: u64, mode: PoolMode) -> u64 {
        let mut n = 0;
        self.for_each_range(offset, len, |sh, at, l| {
            n += sh.flush(at, l, mode);
        });
        n
    }

    /// Arena-scoped fence: orders pending flushes within the span, shard by
    /// shard (each clipped to its own range). Identical durable effect to
    /// the global engine's `fence_range` over the same span.
    fn fence_raw(&mut self) {
        let (lo, hi) = self.span;
        for g in &mut self.guards {
            let sh = g.shard();
            let clip_lo = lo.max(sh.base);
            let clip_hi = hi.min(sh.end());
            if clip_lo < clip_hi {
                sh.fence_range(clip_lo, clip_hi);
            }
        }
    }

    fn credit_hot(&mut self, flushes: u64, fences: u64, write_bytes: u64) {
        let b = self.stats.bank(self.first_shard);
        b.add(&b.flushes, flushes);
        b.add(&b.fences, fences);
        b.add(&b.write_bytes, write_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_geometry_is_line_aligned_and_covers_capacity() {
        let media = vec![0u8; 1 << 20];
        let geom = HeapGeometry::single(media.len() as u64);
        let s = ShardedPool::new(media, CacheImpl::Dense, 4, false, &geom);
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.shard_bytes % CACHE_LINE, 0);
        assert_eq!(s.media_snapshot().len(), 1 << 20);
    }

    #[test]
    fn tiny_pool_gets_fewer_shards_than_requested() {
        // 8 KiB across 4096 requested shards: at least one line per shard.
        let media = vec![0u8; 8192];
        let geom = HeapGeometry::single(media.len() as u64);
        let s = ShardedPool::new(media, CacheImpl::Dense, 4096, false, &geom);
        assert_eq!(s.shard_count(), 8192 / CACHE_LINE as usize);
        assert_eq!(s.shard_bytes, CACHE_LINE);
    }

    #[test]
    fn cross_shard_write_and_read_round_trip() {
        let media = vec![0u8; 8192];
        let geom = HeapGeometry::single(media.len() as u64);
        let s = ShardedPool::new(media, CacheImpl::Dense, 2, false, &geom);
        let stats = PmemStats::with_banks(s.shard_count());
        let boundary = s.shard_bytes - 32;
        let data: Vec<u8> = (0..64u8).collect();
        s.write(boundary, &data, PoolMode::Performance, &stats);
        let mut back = vec![0u8; 64];
        s.read(boundary, &mut back, &stats);
        assert_eq!(back, data);
        // Op attributed to the first shard only; bytes are the full store.
        let shards = stats.shard_snapshots();
        assert_eq!(shards[0].writes, 1);
        assert_eq!(shards[0].write_bytes, 64);
        assert_eq!(shards[1].writes, 0);
    }

    #[test]
    fn arena_raw_covers_only_the_arena_span() {
        // A multi-arena geometry over a sharded pool: the raw handle for a
        // side arena must read/write its own span correctly even though the
        // guard slice does not start at shard 0.
        let capacity = 1u64 << 20;
        let geom = crate::pool::HeapGeometry::plan(capacity, 4);
        assert!(geom.arenas().len() > 1, "1 MiB plans side arenas");
        let media = vec![0u8; capacity as usize];
        let s = ShardedPool::new(media, CacheImpl::Dense, 8, false, &geom);
        let stats = PmemStats::with_banks(s.shard_count());
        let last = geom.arenas().len() - 1;
        let (lo, hi) = geom.arenas()[last].span();
        s.with_arena_raw(last, &stats, |_mirror, raw| {
            raw.write_raw(lo + 8, &[0xAB; 16], PoolMode::CrashSim);
            raw.flush_raw(lo + 8, 16, PoolMode::CrashSim);
            raw.fence_raw();
            let mut back = [0u8; 16];
            raw.read_raw(lo + 8, &mut back);
            assert_eq!(back, [0xAB; 16]);
        });
        // The write is durable on media after the arena-scoped fence.
        let snap = s.media_snapshot();
        assert_eq!(&snap[(lo + 8) as usize..(lo + 24) as usize], &[0xAB; 16]);
        assert!(hi <= capacity);
    }
}
