//! The persistent memory pool: media, simulated cache, flush/fence, crash.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use clobber_trace::{EventKind, Tracer};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::{PAddr, CACHE_LINE};
use crate::alloc::ArenaMirror;
use crate::cache::{line_count, Cache, LineCache, RefCache};
use crate::crash::CrashConfig;
use crate::fault::{FaultPlan, FaultState};
use crate::shard::ShardedPool;
use crate::stats::PmemStats;

/// Magic value of the original single-arena pool format (still opened).
const POOL_MAGIC_V1: u64 = 0xC10B_BE12_0000_0001;
/// Magic value of the multi-arena pool format.
const POOL_MAGIC_V2: u64 = 0xC10B_BE12_0000_0002;

/// Monotonic id source distinguishing live pools for thread-local allocator
/// state (arena routing and reservation magazines).
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// Pool header layout (offsets within the pool).
///
/// The same relative layout serves every arena: arena 0's metadata *is* the
/// pool header (`meta_base == 0`), and each side arena repeats the
/// `FRONTIER`/`ALLOC_REDO`/`FREE_HEADS` block at its own `meta_base`, with a
/// `HEAP_BASE`-sized metadata prefix before its heap.
pub(crate) mod layout {
    /// `u64` magic number.
    pub const MAGIC: u64 = 0;
    /// `u64` pool capacity in bytes.
    pub const CAPACITY: u64 = 8;
    /// `u64` root object address.
    pub const ROOT: u64 = 16;
    /// `u64` allocation frontier (relative to the arena's `meta_base`).
    pub const FRONTIER: u64 = 24;
    /// `u64` arena count (v2 pools; a v1 pool is one arena).
    pub const ARENAS: u64 = 32;
    /// `u64` bytes spanned by each side arena (v2 pools, 0 if none).
    pub const ARENA_BYTES: u64 = 40;
    /// 64-byte allocator redo record (relative to the arena's `meta_base`).
    pub const ALLOC_REDO: u64 = 64;
    /// Free-list heads: one `u64` per size class, then the huge-list head
    /// (relative to the arena's `meta_base`).
    pub const FREE_HEADS: u64 = 128;
    /// First byte available to the heap (relative to the arena's
    /// `meta_base`) — i.e. the per-arena metadata size.
    pub const HEAP_BASE: u64 = 256;
}

/// Byte geometry of one allocator arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ArenaLayout {
    /// Start of this arena's metadata block (0 for arena 0 — the pool
    /// header doubles as its metadata).
    pub(crate) meta_base: u64,
    /// First heap byte (`meta_base + layout::HEAP_BASE`).
    pub(crate) heap_lo: u64,
    /// One past the last heap byte.
    pub(crate) heap_hi: u64,
}

impl ArenaLayout {
    pub(crate) fn frontier_off(&self) -> u64 {
        self.meta_base + layout::FRONTIER
    }
    pub(crate) fn redo_off(&self) -> u64 {
        self.meta_base + layout::ALLOC_REDO
    }
    pub(crate) fn head_off(&self, class: u32) -> u64 {
        self.meta_base + layout::FREE_HEADS + class as u64 * 8
    }
    /// The whole byte span owned by this arena (metadata + heap): the lock
    /// and fence scope of allocator operations on it.
    pub(crate) fn span(&self) -> (u64, u64) {
        (self.meta_base, self.heap_hi)
    }
}

/// The pool's arena partition, derived from (and persisted in) the header.
///
/// Arena 0 keeps the exact v1 shape — metadata at offset 0, heap from
/// `HEAP_BASE` up to `main_hi` — so single-arena pools are bit-compatible
/// with the v1 format and huge allocations keep the largest region. Side
/// arenas are fixed-size spans carved from the top of the pool. Geometry is
/// a property of the pool *format*, never of the engine or shard count, so
/// every concurrency mode computes identical block addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct HeapGeometry {
    arenas: Vec<ArenaLayout>,
    /// End of arena 0's heap (== capacity when there are no side arenas).
    main_hi: u64,
    /// Bytes per side arena (0 when there are none).
    side_bytes: u64,
}

/// Smallest heap arena 0 must keep when carving side arenas.
const MIN_MAIN_HEAP: u64 = 64 * 1024;
/// Minimum span of one side arena (metadata + heap).
const SIDE_ARENA_MIN: u64 = 64 * 1024;

impl HeapGeometry {
    /// Single-arena geometry (v1 pools and tiny v2 pools).
    pub(crate) fn single(capacity: u64) -> HeapGeometry {
        HeapGeometry {
            arenas: vec![ArenaLayout {
                meta_base: 0,
                heap_lo: layout::HEAP_BASE,
                heap_hi: capacity,
            }],
            main_hi: capacity,
            side_bytes: 0,
        }
    }

    fn with_sides(capacity: u64, sides: u64, side_bytes: u64) -> HeapGeometry {
        let main_hi = capacity - sides * side_bytes;
        let mut arenas = vec![ArenaLayout {
            meta_base: 0,
            heap_lo: layout::HEAP_BASE,
            heap_hi: main_hi,
        }];
        for j in 0..sides {
            let meta_base = main_hi + j * side_bytes;
            arenas.push(ArenaLayout {
                meta_base,
                heap_lo: meta_base + layout::HEAP_BASE,
                heap_hi: meta_base + side_bytes,
            });
        }
        HeapGeometry {
            arenas,
            main_hi,
            side_bytes,
        }
    }

    /// Plans the arena partition for a fresh pool: up to `requested - 1`
    /// side arenas of `max(64 KiB, capacity/16)` bytes each, carved from
    /// the top, as long as arena 0 keeps a useful heap. Pools too small (or
    /// with a capacity that is not cache-line aligned, which would let an
    /// arena boundary split a line) stay single-arena.
    pub(crate) fn plan(capacity: u64, requested: u32) -> HeapGeometry {
        let wanted = requested.clamp(1, 64) as u64 - 1;
        if wanted == 0 || !capacity.is_multiple_of(CACHE_LINE) {
            return HeapGeometry::single(capacity);
        }
        let side_bytes = (capacity / 16).max(SIDE_ARENA_MIN);
        let side_bytes = side_bytes - side_bytes % CACHE_LINE;
        let spare = capacity.saturating_sub(layout::HEAP_BASE + MIN_MAIN_HEAP);
        let sides = wanted.min(spare / side_bytes);
        if sides == 0 {
            return HeapGeometry::single(capacity);
        }
        HeapGeometry::with_sides(capacity, sides, side_bytes)
    }

    /// Reads (and validates) the geometry persisted in a pool header.
    pub(crate) fn read(media: &[u8]) -> Result<HeapGeometry, PmemError> {
        let capacity = media.len() as u64;
        if get_u64(media, layout::MAGIC) == POOL_MAGIC_V1 {
            return Ok(HeapGeometry::single(capacity));
        }
        let count = get_u64(media, layout::ARENAS);
        let side_bytes = get_u64(media, layout::ARENA_BYTES);
        if count == 0 || count > 4096 {
            return Err(PmemError::CorruptPool(format!(
                "header arena count {count} invalid"
            )));
        }
        if count == 1 {
            return Ok(HeapGeometry::single(capacity));
        }
        let sides = count - 1;
        if side_bytes < layout::HEAP_BASE + CACHE_LINE
            || !side_bytes.is_multiple_of(CACHE_LINE)
            || sides
                .checked_mul(side_bytes)
                .is_none_or(|total| total + layout::HEAP_BASE + CACHE_LINE > capacity)
        {
            return Err(PmemError::CorruptPool(format!(
                "header arena span {side_bytes} invalid for {count} arenas"
            )));
        }
        Ok(HeapGeometry::with_sides(capacity, sides, side_bytes))
    }

    pub(crate) fn arenas(&self) -> &[ArenaLayout] {
        &self.arenas
    }

    /// Index of the arena owning byte `offset`.
    pub(crate) fn arena_of(&self, offset: u64) -> usize {
        if offset < self.main_hi || self.side_bytes == 0 {
            return 0;
        }
        (1 + ((offset - self.main_hi) / self.side_bytes) as usize).min(self.arenas.len() - 1)
    }
}

/// Whether the pool models the volatile cache or runs at full speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Writes go straight to media; flushes/fences only bump counters.
    /// Crash simulation is a no-op (everything is always durable), so this
    /// mode is for throughput experiments, not crash testing.
    Performance,
    /// Writes land in a simulated volatile cache; only flushed-and-fenced
    /// lines are guaranteed durable; [`PmemPool::crash`] produces torn
    /// states. Use for failure-atomicity testing.
    CrashSim,
}

/// Which data structure backs the simulated cache in crash-sim mode.
///
/// Both implementations obey the same durability contract and produce
/// bit-identical durable media, reads, stats and seeded crash outcomes (see
/// [`crate::cache`]); the dense model is simply faster. The reference model
/// is retained as the executable specification for equivalence tests and
/// A/B benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheImpl {
    /// Dense line-indexed model: per-line state bits + one shadow buffer.
    #[default]
    Dense,
    /// Original `HashMap`-per-line model (slower; testing only).
    Reference,
}

/// How the pool synchronizes its internal state.
///
/// All three modes implement the identical durability contract and produce
/// bit-identical durable media, counters (in aggregate) and seeded crash
/// outcomes; they differ only in how the hot path locks. The lock-step
/// property test (`tests/proptest_shard_equiv.rs`) holds them to that.
///
/// **Persist-event ordering across shards:** fault injection needs one
/// coherent total order of persist events no matter how many shards exist.
/// That order is defined by acquisition order on the pool's single fault
/// mutex, which every armed store/flush/fence acquires *before* touching
/// any shard. Disarmed pools skip the mutex entirely (one relaxed atomic
/// load), so the ordering authority costs nothing unless a [`FaultPlan`]
/// is armed — and while armed, a fixed single-threaded workload trips at
/// the same event index regardless of shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolConcurrency {
    /// One mutex around all pool state — the retained reference
    /// implementation the sharded modes are tested against.
    #[default]
    GlobalLock,
    /// State is partitioned into contiguous, line-aligned address ranges,
    /// each behind its own lock; disjoint-range operations proceed in
    /// parallel. Requests are clamped to at least one line per shard, so
    /// the effective shard count may be lower for tiny pools.
    Sharded {
        /// Requested number of address-range shards (clamped to ≥ 1).
        shards: u32,
    },
    /// No locking on the hot path at all. The first thread to touch the
    /// pool claims it; any access from another thread panics. For
    /// single-threaded benchmarks and harnesses.
    SingleThread,
}

/// Configuration for [`PmemPool::create`].
///
/// # Example
///
/// ```
/// use clobber_pmem::{PoolMode, PoolOptions};
///
/// let opts = PoolOptions::crash_sim(1 << 20);
/// assert_eq!(opts.mode, PoolMode::CrashSim);
/// assert_eq!(opts.capacity, 1 << 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolOptions {
    /// Pool size in bytes. Must be at least 4 KiB.
    pub capacity: u64,
    /// Cache-modeling mode.
    pub mode: PoolMode,
    /// Cache implementation (crash-sim mode only).
    pub cache_impl: CacheImpl,
    /// Locking strategy for the pool's internal state.
    pub concurrency: PoolConcurrency,
    /// Requested allocator arena count (clamped to what the capacity can
    /// hold; tiny pools stay single-arena). Arenas partition the heap so
    /// concurrent allocator calls from different threads take disjoint
    /// locks; the partition is persisted in the pool header and independent
    /// of the concurrency mode.
    pub arenas: u32,
}

/// Default allocator arena count for fresh pools.
pub const DEFAULT_ARENAS: u32 = 4;

impl PoolOptions {
    /// Options for a performance-mode pool of `capacity` bytes.
    pub fn performance(capacity: u64) -> Self {
        PoolOptions {
            capacity,
            mode: PoolMode::Performance,
            cache_impl: CacheImpl::Dense,
            concurrency: PoolConcurrency::GlobalLock,
            arenas: DEFAULT_ARENAS,
        }
    }

    /// Options for a crash-simulation pool of `capacity` bytes.
    pub fn crash_sim(capacity: u64) -> Self {
        PoolOptions {
            capacity,
            mode: PoolMode::CrashSim,
            cache_impl: CacheImpl::Dense,
            concurrency: PoolConcurrency::GlobalLock,
            arenas: DEFAULT_ARENAS,
        }
    }

    /// Requests `arenas` allocator arenas (clamped to the capacity's room;
    /// 1 disables side arenas for v1-identical layout).
    pub fn with_arenas(mut self, arenas: u32) -> Self {
        self.arenas = arenas;
        self
    }

    /// Selects the reference (hash-map) cache model, for equivalence tests
    /// and before/after benchmarks.
    pub fn with_reference_cache(mut self) -> Self {
        self.cache_impl = CacheImpl::Reference;
        self
    }

    /// Partitions pool state into `shards` address-range shards.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.concurrency = PoolConcurrency::Sharded { shards };
        self
    }

    /// Selects the lock-free single-thread hot path.
    pub fn single_thread(mut self) -> Self {
        self.concurrency = PoolConcurrency::SingleThread;
        self
    }

    /// Selects an explicit [`PoolConcurrency`] mode.
    pub fn with_concurrency(mut self, concurrency: PoolConcurrency) -> Self {
        self.concurrency = concurrency;
        self
    }
}

/// Errors returned by pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmemError {
    /// An access fell outside the pool.
    OutOfBounds {
        /// Start offset of the faulting access.
        addr: u64,
        /// Length of the faulting access.
        len: u64,
        /// Pool capacity.
        capacity: u64,
    },
    /// The persistent heap cannot satisfy an allocation.
    OutOfMemory {
        /// Requested payload size in bytes.
        requested: u64,
    },
    /// `free` was called on an address that is not an allocated block.
    InvalidFree {
        /// The faulting address.
        addr: u64,
    },
    /// A log buffer ran out of space.
    LogFull {
        /// Bytes that did not fit.
        needed: u64,
        /// Log capacity in bytes.
        capacity: u64,
    },
    /// The pool header or allocator metadata failed validation.
    CorruptPool(String),
    /// The requested capacity is too small to hold the pool metadata.
    CapacityTooSmall {
        /// Requested capacity.
        requested: u64,
        /// Minimum supported capacity.
        minimum: u64,
    },
    /// An armed [`FaultPlan`] tripped: the pool models total power loss at
    /// the given persist event and refuses all further operations.
    InjectedCrash {
        /// The 0-based persist event at which the injector fired.
        event: u64,
    },
    /// A read hit a transient media fault; retrying the operation may
    /// succeed. Injected by [`FaultPlan::transient_read_faults`].
    TransientMediaFault {
        /// Start offset of the faulting read.
        addr: u64,
    },
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::OutOfBounds {
                addr,
                len,
                capacity,
            } => write!(
                f,
                "access [{addr:#x}, {:#x}) out of bounds for pool of {capacity} bytes",
                addr + len
            ),
            PmemError::OutOfMemory { requested } => {
                write!(f, "persistent heap exhausted allocating {requested} bytes")
            }
            PmemError::InvalidFree { addr } => {
                write!(f, "free of {addr:#x} which is not an allocated block")
            }
            PmemError::LogFull { needed, capacity } => {
                write!(
                    f,
                    "log buffer of {capacity} bytes cannot fit {needed} more bytes"
                )
            }
            PmemError::CorruptPool(why) => write!(f, "corrupt pool: {why}"),
            PmemError::CapacityTooSmall { requested, minimum } => write!(
                f,
                "pool capacity {requested} below the minimum of {minimum} bytes"
            ),
            PmemError::InjectedCrash { event } => {
                write!(f, "injected crash at persist event {event}")
            }
            PmemError::TransientMediaFault { addr } => {
                write!(f, "transient media fault reading {addr:#x} (retryable)")
            }
        }
    }
}

impl Error for PmemError {}

/// One contiguous span of media plus its simulated cache — the unit both
/// engines are built from: the global engine holds exactly one covering the
/// whole pool, the sharded engine holds one per address-range shard.
///
/// All offsets are local to `media` (for the global engine, local equals
/// pool-global).
pub(crate) struct MediaCache {
    pub(crate) media: Vec<u8>,
    /// Simulated cache. Stays clean (and unallocated) in performance mode.
    pub(crate) cache: Cache,
}

impl MediaCache {
    pub(crate) fn new(media: Vec<u8>, cache_impl: CacheImpl) -> MediaCache {
        let cache = match cache_impl {
            CacheImpl::Dense => Cache::Dense(LineCache::new()),
            CacheImpl::Reference => Cache::Reference(RefCache::new()),
        };
        MediaCache { media, cache }
    }

    /// Reads `buf.len()` bytes at `offset`, overlaying cached lines on media.
    pub(crate) fn read_raw(&self, offset: u64, buf: &mut [u8]) {
        let len = buf.len() as u64;
        buf.copy_from_slice(&self.media[offset as usize..(offset + len) as usize]);
        if self.cache.is_clean() {
            return;
        }
        self.cache.overlay(offset, buf);
    }

    /// Writes `data` at `offset` into the cache (crash-sim) or media
    /// (performance).
    pub(crate) fn write_raw(&mut self, offset: u64, data: &[u8], mode: PoolMode) {
        match mode {
            PoolMode::Performance => {
                self.media[offset as usize..offset as usize + data.len()].copy_from_slice(data);
            }
            PoolMode::CrashSim => self.cache.write(offset, data, &self.media),
        }
    }

    /// Marks the lines covering `[offset, offset+len)` as write-back
    /// initiated. Returns the number of lines touched (for flush accounting).
    ///
    /// The count is pure geometry — identical in both modes and independent
    /// of cache state — so performance mode only does the arithmetic.
    pub(crate) fn flush_raw(&mut self, offset: u64, len: u64, mode: PoolMode) -> u64 {
        if mode == PoolMode::CrashSim {
            self.cache.flush_range(offset, len);
        }
        line_count(offset, len)
    }

    /// Orders all pending flushes: their lines become durable on media.
    pub(crate) fn fence_raw(&mut self) {
        self.cache.fence(&mut self.media);
    }

    /// Orders pending flushes whose lines start within `[lo, hi)` local
    /// byte offsets (the allocator's arena-scoped fence).
    pub(crate) fn fence_range_raw(&mut self, lo: u64, hi: u64) {
        self.cache.fence_range(&mut self.media, lo, hi);
    }
}

/// Mutable state of the single-lock (reference) engine.
pub(crate) struct PoolInner {
    pub(crate) mc: MediaCache,
    /// Volatile mirrors of the allocator metadata, one per arena.
    pub(crate) mirrors: Vec<ArenaMirror>,
}

impl PoolInner {
    fn new(media: Vec<u8>, cache_impl: CacheImpl, geom: &HeapGeometry) -> PoolInner {
        let mirrors = geom
            .arenas()
            .iter()
            .map(|&l| ArenaMirror::rebuild(&media, l))
            .collect();
        PoolInner {
            mc: MediaCache::new(media, cache_impl),
            mirrors,
        }
    }
}

/// Raw persist operations over pool-global offsets, with bounds already
/// checked by the caller. The allocator runs against this so one
/// implementation serves both engines; for the sharded engine the
/// implementor holds the shards overlapping the owning arena's span for the
/// duration of the allocator operation, giving that arena's metadata
/// updates the same atomicity they have under the global lock. Fences are
/// arena-scoped in *both* engines (see [`Cache::fence_range`]) so the
/// durable outcome never depends on the engine or shard count.
pub(crate) trait RawPmem {
    fn read_raw(&mut self, offset: u64, buf: &mut [u8]);
    fn write_raw(&mut self, offset: u64, data: &[u8], mode: PoolMode);
    fn flush_raw(&mut self, offset: u64, len: u64, mode: PoolMode) -> u64;
    /// Orders previously flushed lines within the owning arena's span.
    fn fence_raw(&mut self);
    /// Credits hot-path counters accumulated over an allocator operation.
    /// Must be called while the implementor still holds its locks (the
    /// sharded engine writes a per-shard bank that requires exclusivity).
    fn credit_hot(&mut self, flushes: u64, fences: u64, write_bytes: u64);
}

/// [`RawPmem`] over the global engine's single `MediaCache`, scoped to one
/// arena's byte span for fencing.
struct GlobalRaw<'a> {
    mc: &'a mut MediaCache,
    stats: &'a PmemStats,
    /// The owning arena's `[lo, hi)` span — the fence scope.
    span: (u64, u64),
}

impl RawPmem for GlobalRaw<'_> {
    fn read_raw(&mut self, offset: u64, buf: &mut [u8]) {
        self.mc.read_raw(offset, buf);
    }
    fn write_raw(&mut self, offset: u64, data: &[u8], mode: PoolMode) {
        self.mc.write_raw(offset, data, mode);
    }
    fn flush_raw(&mut self, offset: u64, len: u64, mode: PoolMode) -> u64 {
        self.mc.flush_raw(offset, len, mode)
    }
    fn fence_raw(&mut self) {
        self.mc.fence_range_raw(self.span.0, self.span.1);
    }
    fn credit_hot(&mut self, flushes: u64, fences: u64, write_bytes: u64) {
        self.stats.bump(&self.stats.flushes, flushes);
        self.stats.bump(&self.stats.fences, fences);
        self.stats.bump(&self.stats.write_bytes, write_bytes);
    }
}

/// The synchronization engine behind a pool.
enum Engine {
    /// Everything behind one mutex (the reference design).
    Global(Mutex<PoolInner>),
    /// Address-range shards, each behind its own lock (or unsynchronized
    /// owner-checked cells in `SingleThread` mode).
    Sharded(ShardedPool),
}

/// A simulated persistent memory pool.
///
/// All methods take `&self`; internal state is protected by a mutex, so a
/// pool can be shared across threads via [`Arc`]. See the
/// [crate documentation](crate) for the durability contract.
pub struct PmemPool {
    mode: PoolMode,
    cache_impl: CacheImpl,
    concurrency: PoolConcurrency,
    capacity: u64,
    /// Arena partition, read from the (versioned) pool header.
    geom: HeapGeometry,
    /// Identity for thread-local allocator state (routing + magazines):
    /// unique per live pool instance, so a reopened pool starts fresh.
    pool_id: u64,
    /// Round-robin source for thread→arena assignment. The first thread to
    /// allocate always claims arena 0, which keeps single-threaded
    /// workloads bit-identical to the v1 single-arena layout.
    next_arena: AtomicU32,
    stats: Arc<PmemStats>,
    /// Fast-path flag: true while a [`FaultPlan`] is armed. Lets the
    /// disarmed hot path skip the fault mutex entirely.
    faults_armed: AtomicBool,
    /// Fast-path flag: true while a [`Tracer`] is attached. Checked with
    /// one relaxed load on the hot path, so disabled tracing costs nothing.
    trace_on: AtomicBool,
    /// The single fault injector and event tracer. While armed (or traced),
    /// acquisition order on this mutex defines the pool-wide total order of
    /// persist events — the shard-ordering model documented on
    /// [`PoolConcurrency`].
    faults: Mutex<FaultState>,
    engine: Engine,
}

impl fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PmemPool")
            .field("mode", &self.mode)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl PmemPool {
    /// Creates and formats a fresh pool.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::CapacityTooSmall`] if `opts.capacity` cannot hold
    /// the pool metadata.
    pub fn create(opts: PoolOptions) -> Result<PmemPool, PmemError> {
        if opts.capacity < layout::HEAP_BASE + 4096 {
            return Err(PmemError::CapacityTooSmall {
                requested: opts.capacity,
                minimum: layout::HEAP_BASE + 4096,
            });
        }
        let geom = HeapGeometry::plan(opts.capacity, opts.arenas);
        let mut media = vec![0u8; opts.capacity as usize];
        put_u64(&mut media, layout::MAGIC, POOL_MAGIC_V2);
        put_u64(&mut media, layout::CAPACITY, opts.capacity);
        put_u64(&mut media, layout::ROOT, 0);
        put_u64(&mut media, layout::ARENAS, geom.arenas().len() as u64);
        put_u64(&mut media, layout::ARENA_BYTES, geom.side_bytes);
        for arena in geom.arenas() {
            put_u64(&mut media, arena.frontier_off(), arena.heap_lo);
        }
        // Free-list heads and the redo records are already zero.
        Ok(Self::assemble(
            media,
            opts.mode,
            opts.cache_impl,
            opts.concurrency,
            geom,
        ))
    }

    /// Reopens a pool from raw media contents, e.g. after a crash.
    ///
    /// Replays any in-flight allocator redo record and rebuilds the volatile
    /// allocator mirror, mirroring what a PMDK pool open does.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::CorruptPool`] if the header fails validation.
    pub fn open_from_media(media: Vec<u8>, mode: PoolMode) -> Result<PmemPool, PmemError> {
        Self::open_from_media_with(media, mode, CacheImpl::Dense, PoolConcurrency::GlobalLock)
    }

    /// As [`open_from_media`](Self::open_from_media), with an explicit cache
    /// model and concurrency mode (the crash-sweep harness reopens crashed
    /// media under the same configuration it ran with).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::CorruptPool`] if the header fails validation.
    pub fn open_from_media_with(
        mut media: Vec<u8>,
        mode: PoolMode,
        cache_impl: CacheImpl,
        concurrency: PoolConcurrency,
    ) -> Result<PmemPool, PmemError> {
        if media.len() < (layout::HEAP_BASE + 4096) as usize {
            return Err(PmemError::CorruptPool("media shorter than metadata".into()));
        }
        let magic = get_u64(&media, layout::MAGIC);
        if magic != POOL_MAGIC_V1 && magic != POOL_MAGIC_V2 {
            return Err(PmemError::CorruptPool("bad magic".into()));
        }
        let capacity = get_u64(&media, layout::CAPACITY);
        if capacity as usize != media.len() {
            return Err(PmemError::CorruptPool(format!(
                "header capacity {capacity} does not match media length {}",
                media.len()
            )));
        }
        let geom = HeapGeometry::read(&media)?;
        crate::alloc::replay_redo(&mut media, &geom);
        Ok(Self::assemble(media, mode, cache_impl, concurrency, geom))
    }

    /// Builds the engine and stats for validated media.
    fn assemble(
        media: Vec<u8>,
        mode: PoolMode,
        cache_impl: CacheImpl,
        concurrency: PoolConcurrency,
        geom: HeapGeometry,
    ) -> PmemPool {
        let capacity = media.len() as u64;
        let engine = match concurrency {
            PoolConcurrency::GlobalLock => {
                Engine::Global(Mutex::new(PoolInner::new(media, cache_impl, &geom)))
            }
            PoolConcurrency::Sharded { shards } => Engine::Sharded(ShardedPool::new(
                media,
                cache_impl,
                shards as usize,
                false,
                &geom,
            )),
            PoolConcurrency::SingleThread => {
                Engine::Sharded(ShardedPool::new(media, cache_impl, 1, true, &geom))
            }
        };
        let stats = Arc::new(match &engine {
            Engine::Global(_) => PmemStats::new(),
            Engine::Sharded(s) => PmemStats::with_banks(s.shard_count()),
        });
        PmemPool {
            mode,
            cache_impl,
            concurrency,
            capacity,
            geom,
            pool_id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            next_arena: AtomicU32::new(0),
            stats,
            faults_armed: AtomicBool::new(false),
            trace_on: AtomicBool::new(false),
            faults: Mutex::new(FaultState::default()),
            engine,
        }
    }

    /// The pool's arena partition.
    pub(crate) fn geom(&self) -> &HeapGeometry {
        &self.geom
    }

    /// This pool instance's identity for thread-local allocator state.
    pub(crate) fn pool_id(&self) -> u64 {
        self.pool_id
    }

    /// Claims the next arena for a newly routed thread (round-robin).
    pub(crate) fn claim_arena(&self) -> u32 {
        self.next_arena.fetch_add(1, Ordering::Relaxed) % self.geom.arenas().len() as u32
    }

    /// The number of allocator arenas the heap is partitioned into.
    pub fn arena_count(&self) -> usize {
        self.geom.arenas().len()
    }

    /// The allocator arena whose span contains `offset`. Recovery uses
    /// this to partition slot work along the same boundaries the sharded
    /// engine already locks independently.
    pub fn arena_of_offset(&self, offset: u64) -> usize {
        self.geom.arena_of(offset)
    }

    /// The pool's cache-modeling mode.
    pub fn mode(&self) -> PoolMode {
        self.mode
    }

    /// The pool's concurrency mode.
    pub fn concurrency(&self) -> PoolConcurrency {
        self.concurrency
    }

    /// The number of address-range shards (1 for the global-lock and
    /// single-thread engines).
    pub fn shard_count(&self) -> usize {
        match &self.engine {
            Engine::Global(_) => 1,
            Engine::Sharded(s) => s.shard_count(),
        }
    }

    /// The pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Runs `f` with arena `idx`'s mirror and raw persist ops, holding
    /// whatever locks the engine needs: the global mutex, or the arena's
    /// mirror lock plus only the shards overlapping the arena's span, in
    /// ascending order — the documented lock order (at most one arena
    /// mirror per thread, then shards ascending, so disjoint arenas never
    /// deadlock and mostly don't contend).
    pub(crate) fn with_arena_raw<R>(
        &self,
        idx: usize,
        f: impl FnOnce(&mut ArenaMirror, &mut dyn RawPmem) -> R,
    ) -> R {
        match &self.engine {
            Engine::Global(m) => {
                let span = self.geom.arenas()[idx].span();
                let mut guard = m.lock();
                let inner = &mut *guard;
                let mut raw = GlobalRaw {
                    mc: &mut inner.mc,
                    stats: &self.stats,
                    span,
                };
                f(&mut inner.mirrors[idx], &mut raw)
            }
            Engine::Sharded(s) => s.with_arena_raw(idx, &self.stats, f),
        }
    }

    /// Runs `f` with just arena `idx`'s mirror locked.
    pub(crate) fn with_arena_mirror<R>(
        &self,
        idx: usize,
        f: impl FnOnce(&mut ArenaMirror) -> R,
    ) -> R {
        match &self.engine {
            Engine::Global(m) => f(&mut m.lock().mirrors[idx]),
            Engine::Sharded(s) => s.with_arena_mirror(idx, f),
        }
    }

    /// The pool's persistence-event counters.
    pub fn stats(&self) -> &Arc<PmemStats> {
        &self.stats
    }

    /// Arms a [`FaultPlan`] on this pool, resetting the persist-event
    /// counter to zero. Replaces any previously armed plan.
    pub fn arm_faults(&self, plan: FaultPlan) {
        let mut st = self.faults.lock();
        st.transient_remaining = plan.transient_read_faults;
        st.plan = Some(plan);
        st.events = 0;
        st.tripped_at = None;
        self.stats.bump(&self.stats.faults_armed, 1);
        self.faults_armed.store(true, Ordering::Relaxed);
    }

    /// Disarms the injector and returns the number of persist events
    /// observed while the plan was armed.
    ///
    /// Arming with [`FaultPlan::count_only`], running a workload, and
    /// disarming yields the event count `N` to sweep with
    /// [`FaultPlan::crash_at`] for every `k < N`.
    pub fn disarm_faults(&self) -> u64 {
        let mut st = self.faults.lock();
        self.faults_armed.store(false, Ordering::Relaxed);
        st.plan = None;
        st.tripped_at = None;
        st.transient_remaining = 0;
        st.events
    }

    /// Persist events observed since the current plan was armed.
    pub fn fault_events(&self) -> u64 {
        self.faults.lock().events
    }

    /// The persist event at which the armed plan tripped, if it has.
    pub fn fault_tripped(&self) -> Option<u64> {
        self.faults.lock().tripped_at
    }

    /// Whether a fault plan is currently armed. Recovery consults this to
    /// fall back to the deterministic serial scan: the fault-mutex contract
    /// numbers persist events in acquisition order, so sweeps only stay
    /// schedule-independent when one worker drives them.
    pub fn faults_armed(&self) -> bool {
        self.faults_armed.load(Ordering::Relaxed)
    }

    /// Whether the persist path must take the fault mutex: a plan is armed
    /// or a tracer is attached. Two relaxed loads; false on the untraced,
    /// unarmed hot path.
    #[inline]
    fn hooks_engaged(&self) -> bool {
        self.faults_armed.load(Ordering::Relaxed) || self.trace_on.load(Ordering::Relaxed)
    }

    /// Returns `InjectedCrash` if an armed plan has already tripped.
    ///
    /// Allocator entry points call this: they mutate media through internal
    /// paths that bypass the store/flush/fence hooks, so the dead-pool
    /// contract is enforced at their boundary instead.
    pub(crate) fn fail_if_dead(&self) -> Result<(), PmemError> {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return Ok(());
        }
        match self.faults.lock().tripped_at {
            Some(event) => Err(PmemError::InjectedCrash { event }),
            None => Ok(()),
        }
    }

    /// Consults the injector for one persist event (store/flush/fence) and
    /// records it if a tracer is attached — under the same lock acquisition
    /// that assigns its sequence number, so the recorded order is the
    /// pool-wide total order.
    ///
    /// On a tripping *store*, `store` carries `(offset, data)` so a torn
    /// plan can push a seeded prefix of the store's cache lines straight to
    /// media — modeling lines evicted at the instant of failure — before the
    /// pool dies.
    fn fault_persist_event(
        &self,
        kind: EventKind,
        a: u64,
        b: u64,
        store: Option<(u64, &[u8])>,
    ) -> Result<(), PmemError> {
        let mut st = self.faults.lock();
        if let Some(event) = st.tripped_at {
            return Err(PmemError::InjectedCrash { event });
        }
        let event = st.events;
        st.events += 1;
        if let Some(tracer) = st.tracer.as_ref() {
            let recorded = tracer.record(event, kind, 0, a, b);
            self.bump_trace_stat(recorded);
        }
        let Some(plan) = st.plan else { return Ok(()) };
        if plan.trip_at_event != Some(event) {
            return Ok(());
        }
        st.tripped_at = Some(event);
        if let Some(tracer) = st.tracer.as_ref() {
            // The trip shares the tripping event's sequence number; the
            // stable merge keeps it right after the event that tripped.
            let recorded = tracer.record(event, EventKind::FaultTrip, 0, event, 0);
            self.bump_trace_stat(recorded);
        }
        drop(st);
        self.stats.bump(&self.stats.faults_tripped, 1);
        if plan.torn_store {
            if let Some((offset, data)) = store {
                self.tear_store_to_media(offset, data, plan.seed ^ event);
            }
        }
        Err(PmemError::InjectedCrash { event })
    }

    fn bump_trace_stat(&self, recorded: bool) {
        if recorded {
            self.stats.bump(&self.stats.trace_events, 1);
        } else {
            self.stats.bump(&self.stats.trace_dropped, 1);
        }
    }

    /// Attaches (or with `None` detaches) an event [`Tracer`].
    ///
    /// While attached, every store/flush/fence records a typed event stamped
    /// with its persist-event sequence number, and the runtime layers record
    /// transaction/log/allocator events between them via
    /// [`trace_app_event`](Self::trace_app_event). Tracing alone (no armed
    /// [`FaultPlan`]) also advances the sequence counter; arming a plan
    /// resets it to zero, so attach the tracer *after* arming when combining
    /// both — trip indices then match untraced runs.
    ///
    /// The tracer does not survive [`crash`](Self::crash) (a crash returns a
    /// fresh pool instance); re-attach to trace recovery.
    pub fn set_tracer(&self, tracer: Option<Arc<Tracer>>) {
        let mut st = self.faults.lock();
        self.trace_on.store(tracer.is_some(), Ordering::Relaxed);
        st.tracer = tracer;
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.faults.lock().tracer.clone()
    }

    /// Whether a tracer is currently attached (one relaxed load).
    pub fn tracing_enabled(&self) -> bool {
        self.trace_on.load(Ordering::Relaxed)
    }

    /// Records a non-persist event (transaction, log, allocator, recovery)
    /// at the current sequence point: the event is stamped with the number
    /// of persist events observed so far, ordering it between the
    /// surrounding store/flush/fence events without consuming an index.
    ///
    /// No-op when tracing is off; also a no-op once an armed plan has
    /// tripped, so a recorded trace ends at its [`EventKind::FaultTrip`]
    /// event exactly like the replayed one will.
    pub fn trace_app_event(&self, kind: EventKind, name: u32, a: u64, b: u64) {
        if !self.trace_on.load(Ordering::Relaxed) {
            return;
        }
        let st = self.faults.lock();
        if st.tripped_at.is_some() {
            return;
        }
        if let Some(tracer) = st.tracer.as_ref() {
            let recorded = tracer.record(st.events, kind, name, a, b);
            self.bump_trace_stat(recorded);
        }
    }

    /// Writes a seeded prefix of the store's cache lines directly to media.
    ///
    /// Only multi-line stores tear: a single-line store is atomic at the
    /// media level, matching the 8-byte/line failure-atomicity model.
    fn tear_store_to_media(&self, offset: u64, data: &[u8], seed: u64) {
        let lines = line_count(offset, data.len() as u64);
        if lines < 2 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let surviving: u64 = rng.gen_range(1..lines);
        // Bytes of `data` that fall within the first `surviving` lines.
        let first_line = offset / CACHE_LINE;
        let cut = ((first_line + surviving) * CACHE_LINE - offset) as usize;
        let cut = cut.min(data.len());
        match &self.engine {
            Engine::Global(m) => {
                let s = offset as usize;
                m.lock().mc.media[s..s + cut].copy_from_slice(&data[..cut]);
            }
            Engine::Sharded(s) => s.media_write(offset, &data[..cut]),
        }
    }

    /// Consults the injector before a read: dead pools refuse, and a plan
    /// may serve a bounded burst of transient faults.
    fn fault_read_event(&self, offset: u64) -> Result<(), PmemError> {
        let mut st = self.faults.lock();
        if let Some(event) = st.tripped_at {
            return Err(PmemError::InjectedCrash { event });
        }
        if st.transient_remaining > 0 {
            st.transient_remaining -= 1;
            drop(st);
            self.stats.bump(&self.stats.faults_tripped, 1);
            return Err(PmemError::TransientMediaFault { addr: offset });
        }
        Ok(())
    }

    /// Flips `flips` distinct seeded bits within `[addr, addr+len)` directly
    /// on the durable media, modeling at-rest corruption of that region
    /// (e.g. a v_log slot whose lines decayed).
    ///
    /// The simulated volatile cache is not touched, so a pool that still
    /// holds those lines dirty may mask the damage until a crash/reopen —
    /// exactly like real hardware. Corrupt after [`crash`](Self::crash) (or
    /// on a freshly opened pool) to make the damage visible to recovery.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds the pool, and
    /// [`PmemError::CorruptPool`] if `flips` exceeds the `len * 8` available
    /// bits.
    pub fn inject_bit_corruption(
        &self,
        addr: PAddr,
        len: u64,
        seed: u64,
        flips: u32,
    ) -> Result<(), PmemError> {
        self.check(addr, len)?;
        let bits = len * 8;
        if u64::from(flips) > bits {
            return Err(PmemError::CorruptPool(format!(
                "cannot flip {flips} distinct bits in a {len}-byte region"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chosen = std::collections::HashSet::new();
        // Draw the bit positions first (the sequence must not depend on the
        // engine), then apply the flips — XOR commutes, so order is moot.
        while chosen.len() < flips as usize {
            let bit: u64 = rng.gen_range(0..bits);
            chosen.insert(bit);
        }
        match &self.engine {
            Engine::Global(m) => {
                let mut inner = m.lock();
                for &bit in &chosen {
                    let byte = (addr.offset() + bit / 8) as usize;
                    inner.mc.media[byte] ^= 1 << (bit % 8);
                }
            }
            Engine::Sharded(s) => {
                for &bit in &chosen {
                    s.media_xor(addr.offset() + bit / 8, 1 << (bit % 8));
                }
            }
        }
        self.stats.bump(&self.stats.faults_tripped, 1);
        Ok(())
    }

    fn check(&self, addr: PAddr, len: u64) -> Result<(), PmemError> {
        let off = addr.offset();
        if off.checked_add(len).is_none_or(|end| end > self.capacity) {
            return Err(PmemError::OutOfBounds {
                addr: off,
                len,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds the pool.
    pub fn read_into(&self, addr: PAddr, buf: &mut [u8]) -> Result<(), PmemError> {
        self.check(addr, buf.len() as u64)?;
        if self.faults_armed.load(Ordering::Relaxed) {
            self.fault_read_event(addr.offset())?;
        }
        match &self.engine {
            Engine::Global(m) => {
                self.stats.bump(&self.stats.reads, 1);
                self.stats.bump(&self.stats.read_bytes, buf.len() as u64);
                m.lock().mc.read_raw(addr.offset(), buf);
            }
            Engine::Sharded(s) => s.read(addr.offset(), buf, &self.stats),
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds the pool.
    pub fn read_bytes(&self, addr: PAddr, len: u64) -> Result<Vec<u8>, PmemError> {
        let mut buf = vec![0u8; len as usize];
        self.read_into(addr, &mut buf)?;
        Ok(buf)
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds the pool.
    pub fn read_u64(&self, addr: PAddr) -> Result<u64, PmemError> {
        let mut buf = [0u8; 8];
        self.read_into(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Stores `data` at `addr`. The store is *not* durable until the covering
    /// lines are flushed and fenced (crash-sim mode).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds the pool.
    pub fn write_bytes(&self, addr: PAddr, data: &[u8]) -> Result<(), PmemError> {
        self.check(addr, data.len() as u64)?;
        if self.hooks_engaged() {
            self.fault_persist_event(
                EventKind::Store,
                addr.offset(),
                data.len() as u64,
                Some((addr.offset(), data)),
            )?;
        }
        match &self.engine {
            Engine::Global(m) => {
                self.stats.bump(&self.stats.writes, 1);
                self.stats.bump(&self.stats.write_bytes, data.len() as u64);
                m.lock().mc.write_raw(addr.offset(), data, self.mode);
            }
            Engine::Sharded(s) => s.write(addr.offset(), data, self.mode, &self.stats),
        }
        Ok(())
    }

    /// Stores a little-endian `u64` at `addr` (not durable until persisted).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds the pool.
    pub fn write_u64(&self, addr: PAddr, value: u64) -> Result<(), PmemError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Issues a `clwb`-style write-back for every line covering
    /// `[addr, addr+len)`. Durability still requires a subsequent
    /// [`fence`](Self::fence).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds the pool.
    pub fn flush(&self, addr: PAddr, len: u64) -> Result<(), PmemError> {
        self.check(addr, len)?;
        if self.hooks_engaged() {
            self.fault_persist_event(EventKind::Flush, addr.offset(), len, None)?;
        }
        match &self.engine {
            Engine::Global(m) => {
                let n = m.lock().mc.flush_raw(addr.offset(), len, self.mode);
                self.stats.bump(&self.stats.flushes, n);
            }
            Engine::Sharded(s) => s.flush(addr.offset(), len, self.mode, &self.stats),
        }
        Ok(())
    }

    /// Issues an `sfence`: all previously flushed lines become durable.
    ///
    /// When an armed [`FaultPlan`] trips on (or before) this fence, the
    /// fence is silently lost — the power failed before the ordering point,
    /// so pending flushes never become durable. Subsequent fallible
    /// operations report the injected crash.
    pub fn fence(&self) {
        if self.hooks_engaged()
            && self
                .fault_persist_event(EventKind::Fence, 0, 0, None)
                .is_err()
        {
            return;
        }
        match &self.engine {
            Engine::Global(m) => {
                self.stats.bump(&self.stats.fences, 1);
                if self.mode == PoolMode::CrashSim {
                    m.lock().mc.fence_raw();
                }
            }
            Engine::Sharded(s) => s.fence(self.mode, &self.stats),
        }
    }

    /// Flush-and-fence convenience: makes `[addr, addr+len)` durable.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds the pool.
    pub fn persist(&self, addr: PAddr, len: u64) -> Result<(), PmemError> {
        self.flush(addr, len)?;
        self.fence();
        Ok(())
    }

    /// Sets and persists the pool's root object address.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the pool is corrupt.
    pub fn set_root(&self, root: PAddr) -> Result<(), PmemError> {
        self.write_u64(PAddr::new(layout::ROOT), root.offset())?;
        self.persist(PAddr::new(layout::ROOT), 8)
    }

    /// Returns the pool's root object address ([`PAddr::NULL`] if unset).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the pool is corrupt.
    pub fn root(&self) -> Result<PAddr, PmemError> {
        Ok(PAddr::new(self.read_u64(PAddr::new(layout::ROOT))?))
    }

    /// Simulates a power failure and reopen.
    ///
    /// Each flushed-but-unfenced line survives with probability
    /// `cfg.p_flushed_unfenced`; each dirty unflushed line with probability
    /// `cfg.p_dirty`; fenced data always survives. Returns the pool as a
    /// freshly opened instance (volatile state discarded, allocator redo
    /// replayed, mirror rebuilt). In performance mode all writes are already
    /// on media, so the result is simply a clean reopen.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::CorruptPool`] if the surviving media fails header
    /// validation (which would indicate a bug in this crate, not the caller).
    pub fn crash(&self, cfg: &CrashConfig) -> Result<PmemPool, PmemError> {
        let cfg = &cfg.clamped();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // One survival draw per modified line, in ascending line order —
        // both cache models and both engines visit identically (the sharded
        // engine walks shards in ascending address order, and shard bases
        // are line-aligned, so its draw sequence equals the global one).
        let mut draw = |flush_pending: bool| {
            if flush_pending {
                rng.gen_bool(cfg.p_flushed_unfenced)
            } else {
                rng.gen_bool(cfg.p_dirty)
            }
        };
        let media = match &self.engine {
            Engine::Global(m) => {
                let inner = m.lock();
                let mut media = inner.mc.media.clone();
                inner
                    .mc
                    .cache
                    .for_each_modified(|line, flush_pending, bytes| {
                        if draw(flush_pending) {
                            let s = (line * CACHE_LINE) as usize;
                            media[s..s + CACHE_LINE as usize].copy_from_slice(bytes);
                        }
                    });
                media
            }
            Engine::Sharded(s) => s.crash_media(&mut draw),
        };
        PmemPool::open_from_media_with(media, self.mode, self.cache_impl, self.concurrency)
    }

    /// Returns a copy of the durable media contents (what a crash with
    /// [`CrashConfig::drop_all`] would preserve, before redo replay).
    pub fn media_snapshot(&self) -> Vec<u8> {
        match &self.engine {
            Engine::Global(m) => m.lock().mc.media.clone(),
            Engine::Sharded(s) => s.media_snapshot(),
        }
    }
}

pub(crate) fn get_u64(media: &[u8], offset: u64) -> u64 {
    let s = offset as usize;
    u64::from_le_bytes(media[s..s + 8].try_into().expect("8-byte slice"))
}

pub(crate) fn put_u64(media: &mut [u8], offset: u64, value: u64) {
    let s = offset as usize;
    media[s..s + 8].copy_from_slice(&value.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash_pool() -> PmemPool {
        PmemPool::create(PoolOptions::crash_sim(1 << 20)).expect("create")
    }

    #[test]
    fn create_rejects_tiny_capacity() {
        let err = PmemPool::create(PoolOptions::performance(64)).unwrap_err();
        assert!(matches!(err, PmemError::CapacityTooSmall { .. }));
    }

    #[test]
    fn read_back_what_was_written() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.write_bytes(a, b"hello pmem").unwrap();
        assert_eq!(p.read_bytes(a, 10).unwrap(), b"hello pmem");
    }

    #[test]
    fn out_of_bounds_access_is_rejected() {
        let p = crash_pool();
        let near_end = PAddr::new(p.capacity() - 4);
        assert!(matches!(
            p.write_u64(near_end, 1),
            Err(PmemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            p.read_u64(near_end),
            Err(PmemError::OutOfBounds { .. })
        ));
        // Overflowing offsets must not panic.
        assert!(p.read_u64(PAddr::new(u64::MAX - 2)).is_err());
    }

    #[test]
    fn unfenced_write_is_dropped_by_adversarial_crash() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.write_u64(a, 0xdead).unwrap();
        // Not flushed, not fenced: an adversarial crash drops it.
        let p2 = p.crash(&CrashConfig::drop_all(1)).unwrap();
        assert_eq!(p2.read_u64(a).unwrap(), 0);
    }

    #[test]
    fn flushed_but_unfenced_write_may_be_dropped() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.write_u64(a, 0xdead).unwrap();
        p.flush(a, 8).unwrap();
        let p2 = p.crash(&CrashConfig::drop_all(2)).unwrap();
        assert_eq!(
            p2.read_u64(a).unwrap(),
            0,
            "flush without fence is not durable"
        );
    }

    #[test]
    fn persisted_write_survives_any_crash() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.write_u64(a, 0xbeef).unwrap();
        p.persist(a, 8).unwrap();
        let p2 = p.crash(&CrashConfig::drop_all(3)).unwrap();
        assert_eq!(p2.read_u64(a).unwrap(), 0xbeef);
    }

    #[test]
    fn write_after_flush_redirties_the_line() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.write_u64(a, 1).unwrap();
        p.flush(a, 8).unwrap();
        p.write_u64(a, 2).unwrap(); // re-dirties; earlier flush is void
        p.fence();
        let p2 = p.crash(&CrashConfig::drop_all(4)).unwrap();
        // Neither value is guaranteed, but the *old flush* must not have
        // persisted value 2; with drop_all the line reverts to 0.
        assert_eq!(p2.read_u64(a).unwrap(), 0);
    }

    #[test]
    fn keep_all_crash_preserves_even_unflushed_writes() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.write_u64(a, 77).unwrap();
        let p2 = p.crash(&CrashConfig::keep_all(5)).unwrap();
        assert_eq!(p2.read_u64(a).unwrap(), 77);
    }

    #[test]
    fn torn_multi_line_write_can_partially_survive() {
        let p = crash_pool();
        // Two writes on different lines, only the first is persisted.
        let a = PAddr::new(4096);
        let b = PAddr::new(4096 + 64);
        p.write_u64(a, 11).unwrap();
        p.write_u64(b, 22).unwrap();
        p.persist(a, 8).unwrap();
        let p2 = p.crash(&CrashConfig::drop_all(6)).unwrap();
        assert_eq!(p2.read_u64(a).unwrap(), 11);
        assert_eq!(p2.read_u64(b).unwrap(), 0, "unpersisted line torn away");
    }

    #[test]
    fn reads_see_cached_writes_before_persistence() {
        let p = crash_pool();
        let a = PAddr::new(8192);
        p.write_u64(a, 5).unwrap();
        assert_eq!(p.read_u64(a).unwrap(), 5, "program order visibility");
    }

    #[test]
    fn performance_mode_crash_keeps_everything() {
        let p = PmemPool::create(PoolOptions::performance(1 << 20)).unwrap();
        let a = PAddr::new(4096);
        p.write_u64(a, 9).unwrap();
        let p2 = p.crash(&CrashConfig::drop_all(7)).unwrap();
        assert_eq!(p2.read_u64(a).unwrap(), 9);
    }

    #[test]
    fn stats_count_flushes_and_fences() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.write_bytes(a, &[0u8; 130]).unwrap();
        let before = p.stats().snapshot();
        p.flush(a, 130).unwrap(); // 3 lines
        p.fence();
        let d = p.stats().snapshot().delta(&before);
        assert_eq!(d.flushes, 3);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn root_round_trips_and_survives_crash() {
        let p = crash_pool();
        p.set_root(PAddr::new(12345)).unwrap();
        let p2 = p.crash(&CrashConfig::drop_all(8)).unwrap();
        assert_eq!(p2.root().unwrap(), PAddr::new(12345));
    }

    #[test]
    fn open_rejects_bad_magic() {
        let media = vec![0u8; 1 << 20];
        assert!(matches!(
            PmemPool::open_from_media(media, PoolMode::CrashSim),
            Err(PmemError::CorruptPool(_))
        ));
    }

    #[test]
    fn open_rejects_capacity_mismatch() {
        let p = crash_pool();
        let mut media = p.media_snapshot();
        media.truncate((1 << 20) - 64);
        assert!(matches!(
            PmemPool::open_from_media(media, PoolMode::CrashSim),
            Err(PmemError::CorruptPool(_))
        ));
    }

    #[test]
    fn crash_is_deterministic_per_seed() {
        let make = || {
            let p = crash_pool();
            for i in 0..64u64 {
                p.write_u64(PAddr::new(4096 + i * 64), i + 1).unwrap();
            }
            p
        };
        let cfg = CrashConfig::with_seed(42);
        let m1 = make().crash(&cfg).unwrap().media_snapshot();
        let m2 = make().crash(&cfg).unwrap().media_snapshot();
        assert_eq!(m1, m2);
    }

    #[test]
    fn error_display_is_lowercase_and_informative() {
        let e = PmemError::OutOfMemory { requested: 100 };
        let msg = format!("{e}");
        assert!(msg.contains("100"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn count_only_plan_counts_stores_flushes_and_fences() {
        let p = crash_pool();
        p.arm_faults(FaultPlan::count_only());
        let a = PAddr::new(4096);
        p.write_u64(a, 1).unwrap(); // event 0
        p.flush(a, 8).unwrap(); // event 1
        p.fence(); // event 2
        assert_eq!(p.fault_events(), 3);
        assert_eq!(p.fault_tripped(), None);
        assert_eq!(p.disarm_faults(), 3);
        // Disarmed: operations proceed without advancing any counter.
        p.write_u64(a, 2).unwrap();
        assert_eq!(p.fault_events(), 3);
    }

    #[test]
    fn tripped_pool_refuses_all_operations() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.arm_faults(FaultPlan::crash_at(0));
        assert_eq!(
            p.write_u64(a, 1).unwrap_err(),
            PmemError::InjectedCrash { event: 0 }
        );
        assert!(matches!(
            p.read_u64(a),
            Err(PmemError::InjectedCrash { .. })
        ));
        assert!(matches!(
            p.flush(a, 8),
            Err(PmemError::InjectedCrash { .. })
        ));
        assert!(matches!(p.alloc(64), Err(PmemError::InjectedCrash { .. })));
        assert!(matches!(
            p.free(PAddr::new(8192)),
            Err(PmemError::InjectedCrash { .. })
        ));
        assert_eq!(p.fault_tripped(), Some(0));
        // The dead pool can still be crashed and reopened — that is the
        // harness path — and the reopened pool is healthy.
        let p2 = p.crash(&CrashConfig::drop_all(1)).unwrap();
        assert!(p2.read_u64(a).is_ok());
    }

    #[test]
    fn trip_on_fence_is_silent_but_kills_the_pool() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.arm_faults(FaultPlan::crash_at(2));
        p.write_u64(a, 7).unwrap(); // event 0
        p.flush(a, 8).unwrap(); // event 1
        let fences_before = p.stats().snapshot().fences;
        p.fence(); // event 2: the fence is lost with the power
        assert_eq!(p.stats().snapshot().fences, fences_before);
        assert!(matches!(
            p.read_u64(a),
            Err(PmemError::InjectedCrash { .. })
        ));
        // The lost fence means the flush never ordered: drop_all reverts.
        let p2 = p.crash(&CrashConfig::drop_all(9)).unwrap();
        assert_eq!(p2.read_u64(a).unwrap(), 0);
    }

    #[test]
    fn tripping_store_does_not_reach_media_or_stats() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.arm_faults(FaultPlan::crash_at(0));
        let before = p.stats().snapshot();
        let _ = p.write_u64(a, 0xAB);
        let d = p.stats().snapshot().delta(&before);
        assert_eq!(d.writes, 0, "failed store must not count");
        assert_eq!(d.faults_tripped, 1);
        let p2 = p.crash(&CrashConfig::keep_all(3)).unwrap();
        assert_eq!(p2.read_u64(a).unwrap(), 0, "store never happened");
    }

    #[test]
    fn torn_store_persists_a_strict_prefix_of_lines() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        let data = vec![0xCD_u8; 256]; // 4 lines
        p.arm_faults(FaultPlan::torn_crash_at(0, 42));
        assert!(p.write_bytes(a, &data).is_err());
        // The torn prefix went straight to media, so it survives drop_all.
        let p2 = p.crash(&CrashConfig::drop_all(0)).unwrap();
        let got = p2.read_bytes(a, 256).unwrap();
        let survived = got.iter().take_while(|&&b| b == 0xCD).count();
        assert!(survived > 0, "a torn store persists at least one line");
        assert!(survived < 256, "a torn store must not persist fully");
        assert_eq!(survived % CACHE_LINE as usize, 0, "tear at line boundary");
        assert!(
            got[survived..].iter().all(|&b| b == 0),
            "bytes past the tear never reached media"
        );
    }

    #[test]
    fn torn_single_line_store_is_atomic() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.arm_faults(FaultPlan::torn_crash_at(0, 7));
        assert!(p.write_u64(a, 0xFFFF).is_err());
        let p2 = p.crash(&CrashConfig::drop_all(0)).unwrap();
        assert_eq!(p2.read_u64(a).unwrap(), 0, "single-line store never tears");
    }

    #[test]
    fn transient_read_faults_succeed_on_retry() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.write_u64(a, 123).unwrap();
        p.persist(a, 8).unwrap();
        p.arm_faults(FaultPlan::transient_reads(2));
        assert_eq!(
            p.read_u64(a).unwrap_err(),
            PmemError::TransientMediaFault { addr: 4096 }
        );
        assert!(p.read_u64(a).is_err());
        assert_eq!(p.read_u64(a).unwrap(), 123, "third attempt succeeds");
        assert_eq!(p.stats().snapshot().faults_tripped, 2);
    }

    #[test]
    fn bit_corruption_flips_exactly_the_requested_bits() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.write_bytes(a, &[0u8; 64]).unwrap();
        p.persist(a, 64).unwrap();
        let clean = p.media_snapshot();
        p.inject_bit_corruption(a, 64, 11, 5).unwrap();
        let dirty = p.media_snapshot();
        let flipped: u32 = clean
            .iter()
            .zip(dirty.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(flipped, 5);
        // All damage confined to the target region.
        assert_eq!(clean[..4096], dirty[..4096]);
        assert_eq!(clean[4096 + 64..], dirty[4096 + 64..]);
        // Deterministic per seed.
        let p2 = PmemPool::open_from_media(clean, PoolMode::CrashSim).unwrap();
        p2.inject_bit_corruption(a, 64, 11, 5).unwrap();
        assert_eq!(p2.media_snapshot(), dirty);
    }

    #[test]
    fn bit_corruption_rejects_more_flips_than_bits() {
        let p = crash_pool();
        assert!(matches!(
            p.inject_bit_corruption(PAddr::new(4096), 1, 0, 9),
            Err(PmemError::CorruptPool(_))
        ));
    }

    #[test]
    fn rearming_resets_the_event_counter() {
        let p = crash_pool();
        let a = PAddr::new(4096);
        p.arm_faults(FaultPlan::count_only());
        p.write_u64(a, 1).unwrap();
        p.write_u64(a, 2).unwrap();
        assert_eq!(p.fault_events(), 2);
        p.arm_faults(FaultPlan::crash_at(1));
        p.write_u64(a, 3).unwrap(); // event 0 of the new plan
        assert!(p.write_u64(a, 4).is_err());
        assert_eq!(p.stats().snapshot().faults_armed, 2);
    }
}
