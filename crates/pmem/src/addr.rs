//! Persistent addresses and cache-line geometry.

use std::fmt;

/// Size of a simulated CPU cache line in bytes.
///
/// Flush granularity, crash granularity and flush accounting all operate on
/// cache lines, mirroring `clwb`/`clflush` semantics.
pub const CACHE_LINE: u64 = 64;

/// An offset into a [`PmemPool`](crate::PmemPool), the persistent analogue of
/// a pointer.
///
/// Pool-relative offsets (rather than virtual addresses) make the backing
/// region relocatable, which is why the paper's compiler interposes on every
/// memory access to swizzle pointers (§4.4). `PAddr::NULL` (offset 0) plays
/// the role of the null pointer; offset 0 always holds the pool header, so no
/// valid object can live there.
///
/// # Example
///
/// ```
/// use clobber_pmem::PAddr;
///
/// let a = PAddr::new(128);
/// assert_eq!(a.offset(), 128);
/// assert!(!a.is_null());
/// assert!(PAddr::NULL.is_null());
/// assert_eq!(a.add(8).offset(), 136);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(u64);

impl PAddr {
    /// The null persistent address.
    pub const NULL: PAddr = PAddr(0);

    /// Creates a persistent address from a raw pool offset.
    #[inline]
    pub const fn new(offset: u64) -> Self {
        PAddr(offset)
    }

    /// Returns the raw pool offset.
    #[inline]
    pub const fn offset(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is [`PAddr::NULL`].
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address `bytes` past `self`.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 64-bit offset space.
    #[inline]
    pub const fn add(self, bytes: u64) -> Self {
        PAddr(self.0 + bytes)
    }

    /// Returns the index of the cache line containing this address.
    #[inline]
    pub const fn line(self) -> u64 {
        self.0 / CACHE_LINE
    }
}

impl fmt::Debug for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PAddr(NULL)")
        } else {
            write!(f, "PAddr({:#x})", self.0)
        }
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<PAddr> for u64 {
    fn from(a: PAddr) -> u64 {
        a.0
    }
}

/// Returns the indices of all cache lines overlapped by `[offset, offset+len)`.
///
/// A zero-length range overlaps no lines.
///
/// # Example
///
/// ```
/// use clobber_pmem::addr::lines_for_range;
///
/// assert_eq!(lines_for_range(0, 64).collect::<Vec<_>>(), vec![0]);
/// assert_eq!(lines_for_range(60, 8).collect::<Vec<_>>(), vec![0, 1]);
/// assert_eq!(lines_for_range(128, 0).count(), 0);
/// ```
pub fn lines_for_range(offset: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = offset / CACHE_LINE;
    let last = if len == 0 {
        first // empty iterator via first..first
    } else {
        (offset + len - 1) / CACHE_LINE + 1
    };
    first..last
}

/// Rounds `n` up to the next multiple of `align` (a power of two).
///
/// # Example
///
/// ```
/// use clobber_pmem::addr::align_up;
///
/// assert_eq!(align_up(1, 16), 16);
/// assert_eq!(align_up(16, 16), 16);
/// assert_eq!(align_up(17, 16), 32);
/// ```
pub fn align_up(n: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (n + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_zero_offset() {
        assert_eq!(PAddr::NULL.offset(), 0);
        assert!(PAddr::NULL.is_null());
        assert!(!PAddr::new(1).is_null());
    }

    #[test]
    fn add_advances_offset() {
        assert_eq!(PAddr::new(100).add(28), PAddr::new(128));
    }

    #[test]
    fn line_index_uses_cache_line_granularity() {
        assert_eq!(PAddr::new(0).line(), 0);
        assert_eq!(PAddr::new(63).line(), 0);
        assert_eq!(PAddr::new(64).line(), 1);
        assert_eq!(PAddr::new(640).line(), 10);
    }

    #[test]
    fn lines_for_range_covers_straddling_ranges() {
        assert_eq!(lines_for_range(0, 1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(lines_for_range(63, 2).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(lines_for_range(64, 64).collect::<Vec<_>>(), vec![1]);
        assert_eq!(lines_for_range(0, 129).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn lines_for_empty_range_is_empty() {
        assert_eq!(lines_for_range(40, 0).count(), 0);
    }

    #[test]
    fn align_up_rounds_to_power_of_two() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(7, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 8), 16);
        assert_eq!(align_up(4097, 4096), 8192);
    }

    #[test]
    fn debug_formats_null_specially() {
        assert_eq!(format!("{:?}", PAddr::NULL), "PAddr(NULL)");
        assert_eq!(format!("{:?}", PAddr::new(0x40)), "PAddr(0x40)");
    }

    #[test]
    fn paddr_orders_by_offset() {
        assert!(PAddr::new(1) < PAddr::new(2));
        let mut v = vec![PAddr::new(9), PAddr::new(3)];
        v.sort();
        assert_eq!(v, vec![PAddr::new(3), PAddr::new(9)]);
    }
}
