//! PMDK-style undo-log buffer, in two on-media formats.
//!
//! Clobber-NVM's `clobber_log` is "built over PMDK's undo log API" (paper
//! §4.2); the classical-undo baseline uses the very same primitive, which is
//! what makes the paper's log-count/log-size comparison apples-to-apples.
//!
//! # v1 — per-entry tail format
//!
//! A v1 [`Ulog`] is a pre-allocated persistent buffer:
//!
//! ```text
//! [tail: u64][entry][entry]...
//! entry = [addr: u64][len: u64][checksum: u64][old data: len bytes]
//! ```
//!
//! [`Ulog::append`] persists the entry *and* the new tail with one flush set
//! and **one fence**, so that the store it protects can only become durable
//! after its undo information is durable — the ordering invariant undo
//! logging needs. Entries carry a checksum so a torn append (tail durable,
//! entry not) is detected and treated as absent during recovery.
//!
//! # v2 — line-buffered, self-validating format
//!
//! A v2 log has no persistent tail word at all. Entries are serialized into
//! a stream of 64-bit words packed into 64-byte cache lines, each line
//! carrying a **marker word** that binds the log's generation number to the
//! popcount of the line's payload words:
//!
//! ```text
//! [magic: u64][generation: u64][pad to 64-byte line boundary]
//! line = [w0..w6: payload words][marker = (generation << 9) | popcount(w0..w6)]
//! entry (in the word stream) = [(len << 1) | 1][addr][len bytes, 8 per word]
//! ```
//!
//! Recovery scans lines in order and stops at the first line whose marker
//! does not validate — a torn or never-written tail line — so no separate
//! tail+checksum persist is needed. [`Ulog::clear`] simply bumps the
//! generation (one flush + one fence), invalidating every line at once.
//! Appends go through a [`LogWriter`], which stages words in a volatile
//! line buffer and issues **one streaming flush per full line**, deferring
//! the ordering fence to [`LogWriter::sync`] — the pmembench
//! `LogWriterZeroCached` discipline. Steady-state cost per append drops
//! from 2 flushes + 1 fence (v1) to amortized ~1 flush per *line* plus one
//! fence per ordering point.
//!
//! Both formats are distinguished by the first word: a v1 tail is bounded
//! by the buffer capacity (far below 2^63), while the v2 magic has its top
//! bit set, so every [`Ulog`] method dispatches on the stored image and v1
//! images keep opening and recovering under v2 code.

use crate::addr::PAddr;
use crate::pool::{PmemError, PmemPool};

const DATA_OFF: u64 = 8;
const ENTRY_HDR: u64 = 24;

/// Bytes of log-buffer metadata persisted per entry (address, length,
/// checksum) on top of the payload in the v1 format — counted when comparing
/// "bytes written to the log" across systems.
pub const ENTRY_OVERHEAD: u64 = ENTRY_HDR;

/// v2 per-entry metadata: the header word and the address word.
pub const V2_ENTRY_OVERHEAD: u64 = 16;

/// First word of every v2-formatted log. The top bit is set, which no v1
/// tail can have (tails are bounded by the buffer capacity), so the first
/// word alone identifies the format.
pub const V2_MAGIC: u64 = 0xC10B_B002_0000_0001;

const LINE: u64 = crate::addr::CACHE_LINE;
/// Payload words per v2 line (word 7 is the marker).
const PAYLOAD_WORDS: usize = 7;

/// Which log a handle feeds — used to attribute flush/fence costs to the
/// clobber/undo log vs the redo log in [`StatsSnapshot`].
///
/// [`StatsSnapshot`]: crate::stats::StatsSnapshot
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogKind {
    /// Clobber/undo log (per-store old values).
    Clobber,
    /// Redo log (buffered new values, batch-persisted at commit).
    Redo,
    /// Unattributed (tests, ad-hoc buffers).
    #[default]
    Other,
}

/// The on-media format of a log image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Per-entry persistent tail + checksum (the original format).
    V1,
    /// Line-buffered, marker-validated, generation-cleared.
    #[default]
    V2,
}

/// A persistent undo-log buffer at a fixed pool location.
///
/// The handle itself is a plain descriptor (base + capacity + attribution
/// kind) and can be freely copied; all state lives in the pool, including
/// which format the image uses.
///
/// # Example
///
/// ```
/// use clobber_pmem::{PmemPool, PoolOptions, Ulog};
///
/// # fn main() -> Result<(), clobber_pmem::PmemError> {
/// let pool = PmemPool::create(PoolOptions::crash_sim(1 << 20))?;
/// let buf = pool.alloc(4096)?;
/// let log = Ulog::format(&pool, buf, 4096)?;
///
/// let x = pool.alloc(8)?;
/// pool.write_u64(x, 1)?;
/// pool.persist(x, 8)?;
///
/// log.append(&pool, x, &1u64.to_le_bytes())?; // record old value
/// pool.write_u64(x, 2)?; // overwrite
/// log.apply_backwards(&pool)?; // roll back
/// assert_eq!(pool.read_u64(x)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ulog {
    base: PAddr,
    capacity: u64,
    kind: LogKind,
}

impl Ulog {
    /// Adopts an existing formatted log at `base`.
    pub fn new(base: PAddr, capacity: u64) -> Ulog {
        Ulog {
            base,
            capacity,
            kind: LogKind::Other,
        }
    }

    /// Tags the handle with an attribution kind (see [`LogKind`]).
    pub fn with_kind(mut self, kind: LogKind) -> Ulog {
        self.kind = kind;
        self
    }

    /// Formats a fresh, empty **v1** log in `capacity` bytes at `base` and
    /// persists the empty state.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the buffer exceeds the pool.
    pub fn format(pool: &PmemPool, base: PAddr, capacity: u64) -> Result<Ulog, PmemError> {
        let log = Ulog::new(base, capacity);
        pool.write_u64(base, 0)?;
        pool.persist(base, 8)?;
        Ok(log)
    }

    /// Formats a fresh, empty **v2** (line-buffered) log at `base` and
    /// persists the header (magic + generation 1).
    ///
    /// The data region starts at the first 64-byte pool line boundary past
    /// the header, so line stores never straddle cache lines regardless of
    /// the allocator's 16-byte alignment.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the buffer exceeds the pool.
    pub fn format_v2(pool: &PmemPool, base: PAddr, capacity: u64) -> Result<Ulog, PmemError> {
        let log = Ulog::new(base, capacity);
        pool.write_u64(base, V2_MAGIC)?;
        pool.write_u64(base.add(8), 1)?;
        pool.persist(base, 16)?;
        Ok(log)
    }

    /// Formats in the requested format.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the buffer exceeds the pool.
    pub fn format_as(
        pool: &PmemPool,
        base: PAddr,
        capacity: u64,
        format: LogFormat,
    ) -> Result<Ulog, PmemError> {
        match format {
            LogFormat::V1 => Ulog::format(pool, base, capacity),
            LogFormat::V2 => Ulog::format_v2(pool, base, capacity),
        }
    }

    /// The log's base address in the pool.
    pub fn base(&self) -> PAddr {
        self.base
    }

    /// The log's capacity in bytes (including header words).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The attribution kind of this handle.
    pub fn kind(&self) -> LogKind {
        self.kind
    }

    /// Reads the stored image's format (one pool read — the same word a v1
    /// append would read as the tail).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] on a corrupt descriptor.
    pub fn stored_format(&self, pool: &PmemPool) -> Result<LogFormat, PmemError> {
        Ok(if pool.read_u64(self.base)? == V2_MAGIC {
            LogFormat::V2
        } else {
            LogFormat::V1
        })
    }

    /// First pool offset of the v2 data-line region (64-byte aligned).
    fn v2_data_base(&self) -> u64 {
        (self.base.offset() + 16).div_ceil(LINE) * LINE
    }

    /// Pool address of v2 data line `line_idx`'s marker word (the last
    /// word of the 64-byte line). Exposed for corruption-injection
    /// harnesses that tear a specific line on purpose; normal code never
    /// addresses markers directly.
    pub fn v2_marker_addr(&self, line_idx: u64) -> PAddr {
        PAddr::new(self.v2_data_base() + line_idx * LINE + LINE - 8)
    }

    /// Number of whole 64-byte data lines the buffer holds in v2.
    fn v2_line_count(&self) -> u64 {
        let end = self.base.offset() + self.capacity;
        let data = self.v2_data_base();
        if end <= data {
            0
        } else {
            (end - data) / LINE
        }
    }

    pub(crate) fn bump_kind_flush(&self, pool: &PmemPool) {
        use std::sync::atomic::Ordering::Relaxed;
        let s = pool.stats();
        match self.kind {
            LogKind::Clobber => s.clog_flushes.fetch_add(1, Relaxed),
            LogKind::Redo => s.rlog_flushes.fetch_add(1, Relaxed),
            LogKind::Other => return,
        };
    }

    pub(crate) fn bump_kind_fence(&self, pool: &PmemPool) {
        use std::sync::atomic::Ordering::Relaxed;
        let s = pool.stats();
        match self.kind {
            LogKind::Clobber => s.clog_fences.fetch_add(1, Relaxed),
            LogKind::Redo => s.rlog_fences.fetch_add(1, Relaxed),
            LogKind::Other => return,
        };
    }

    /// Appends an entry recording that `addr` held `old`, durable when the
    /// call returns (exactly one fence in both formats). The caller may then
    /// safely overwrite `addr`.
    ///
    /// This is the stateless compatibility path: it adopts the log, appends
    /// and syncs. Hot paths should hold a [`LogWriter`] instead, which
    /// caches the position and amortizes flushes and fences across appends.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::LogFull`] if the entry does not fit and
    /// [`PmemError::OutOfBounds`] on a corrupt descriptor.
    pub fn append(&self, pool: &PmemPool, addr: PAddr, old: &[u8]) -> Result<(), PmemError> {
        let mut w = LogWriter::attach(pool, *self)?;
        w.append(pool, addr, old)?;
        w.sync(pool)
    }

    /// Appends several entries with a single fence — the redo-logging
    /// pattern: all entries are flushed together and ordered by one fence,
    /// which is why redo systems need fewer ordering instructions per
    /// transaction than undo systems.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::LogFull`] if the batch does not fit (a v1 log is
    /// left unchanged; a v2 log keeps the entries appended before the
    /// overflow, which the caller discards by clearing) and
    /// [`PmemError::OutOfBounds`] on a corrupt descriptor.
    pub fn append_batch(&self, pool: &PmemPool, items: &[(PAddr, &[u8])]) -> Result<(), PmemError> {
        match self.stored_format(pool)? {
            LogFormat::V2 => {
                let mut w = LogWriter::attach(pool, *self)?;
                for (addr, data) in items {
                    w.append(pool, *addr, data)?;
                }
                w.sync(pool)
            }
            LogFormat::V1 => self.append_batch_v1(pool, items),
        }
    }

    fn append_batch_v1(&self, pool: &PmemPool, items: &[(PAddr, &[u8])]) -> Result<(), PmemError> {
        let tail = pool.read_u64(self.base)?;
        let need: u64 = items.iter().map(|(_, d)| ENTRY_HDR + d.len() as u64).sum();
        if DATA_OFF + tail + need > self.capacity {
            return Err(PmemError::LogFull {
                needed: need,
                capacity: self.capacity,
            });
        }
        let mut off = tail;
        for (addr, data) in items {
            let entry = self.base.add(DATA_OFF + off);
            pool.write_u64(entry, addr.offset())?;
            pool.write_u64(entry.add(8), data.len() as u64)?;
            pool.write_u64(
                entry.add(16),
                checksum(addr.offset(), data.len() as u64, data),
            )?;
            pool.write_bytes(entry.add(24), data)?;
            off += ENTRY_HDR + data.len() as u64;
        }
        pool.flush(self.base.add(DATA_OFF + tail), need)?;
        self.bump_kind_flush(pool);
        pool.write_u64(self.base, tail + need)?;
        pool.flush(self.base, 8)?;
        self.bump_kind_flush(pool);
        pool.fence();
        self.bump_kind_fence(pool);
        for (addr, data) in items {
            pool.trace_app_event(
                clobber_trace::EventKind::UlogAppend,
                0,
                addr.offset(),
                data.len() as u64,
            );
        }
        Ok(())
    }

    /// Writes all logged values in append order (redo replay), flushing each
    /// range. The caller fences.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn apply_forwards(&self, pool: &PmemPool) -> Result<(), PmemError> {
        for (addr, data) in self.entries(pool)? {
            pool.write_bytes(addr, &data)?;
            pool.flush(addr, data.len() as u64)?;
        }
        Ok(())
    }

    /// Returns all valid entries in append order as `(addr, old_data)`.
    ///
    /// v1: iteration stops at the first entry whose checksum fails (a torn
    /// append). v2: line scanning stops at the first line whose marker does
    /// not validate against the current generation, and a final entry that
    /// runs past the valid region (it spanned into a torn line) is dropped —
    /// the surviving entries are always a durable prefix of what was
    /// appended.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn entries(&self, pool: &PmemPool) -> Result<Vec<(PAddr, Vec<u8>)>, PmemError> {
        let w0 = pool.read_u64(self.base)?;
        if w0 == V2_MAGIC {
            Ok(self.v2_scan(pool)?.entries)
        } else {
            self.entries_v1(pool, w0)
        }
    }

    fn entries_v1(&self, pool: &PmemPool, tail: u64) -> Result<Vec<(PAddr, Vec<u8>)>, PmemError> {
        let mut out = Vec::new();
        let mut off = 0u64;
        while off + ENTRY_HDR <= tail {
            let entry = self.base.add(DATA_OFF + off);
            let addr = pool.read_u64(entry)?;
            let len = pool.read_u64(entry.add(8))?;
            let sum = pool.read_u64(entry.add(16))?;
            if off + ENTRY_HDR + len > tail {
                break; // torn: length runs past the tail
            }
            let data = pool.read_bytes(entry.add(24), len)?;
            if checksum(addr, len, &data) != sum {
                break; // torn: payload never became durable
            }
            out.push((PAddr::new(addr), data));
            off += ENTRY_HDR + len;
        }
        Ok(out)
    }

    /// Scans the v2 line region: collects the valid word stream (stopping
    /// at the first marker mismatch), parses entries out of it, and reports
    /// the word position one past the last complete entry — which is where
    /// a [`LogWriter`] resumes appending.
    fn v2_scan(&self, pool: &PmemPool) -> Result<V2Scan, PmemError> {
        let gen = pool.read_u64(self.base.add(8))?;
        let data = self.v2_data_base();
        let nlines = self.v2_line_count();
        let mut words: Vec<u64> = Vec::new();
        for li in 0..nlines {
            let raw = pool.read_bytes(PAddr::new(data + li * LINE), LINE)?;
            let mut w = [0u64; 8];
            for (i, c) in raw.chunks_exact(8).enumerate() {
                w[i] = u64::from_le_bytes(c.try_into().unwrap());
            }
            if w[7] != v2_marker(gen, &w) {
                break;
            }
            words.extend_from_slice(&w[..PAYLOAD_WORDS]);
        }
        let mut entries = Vec::new();
        let mut i = 0usize;
        while i < words.len() {
            let h = words[i];
            if h & 1 == 0 {
                break; // zero terminator (or malformed header): end of stream
            }
            let len = h >> 1;
            if len > self.capacity {
                break; // garbage header: cannot be a real entry
            }
            let dw = (len.div_ceil(8)) as usize;
            if i + 2 + dw > words.len() {
                break; // entry spans into a torn/invalid line: dropped
            }
            let addr = words[i + 1];
            let mut bytes = Vec::with_capacity(dw * 8);
            for k in 0..dw {
                bytes.extend_from_slice(&words[i + 2 + k].to_le_bytes());
            }
            bytes.truncate(len as usize);
            entries.push((PAddr::new(addr), bytes));
            i += 2 + dw;
        }
        Ok(V2Scan {
            gen,
            entries,
            stream_end: i as u64,
        })
    }

    /// Restores all logged old values, most recent first (classical undo
    /// rollback order), flushing each restored range. The caller fences.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn apply_backwards(&self, pool: &PmemPool) -> Result<(), PmemError> {
        self.apply_backwards_from(pool, 0)
    }

    /// [`apply_backwards`](Self::apply_backwards) restricted to the entries
    /// at index `skip` and beyond: the first `skip` entries are left
    /// unapplied. Recovery's checkpointed resume path uses this to undo only
    /// the stores *past* the persisted watermark — entries below it belong
    /// to stores whose effects are already durably applied and must stand.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn apply_backwards_from(&self, pool: &PmemPool, skip: usize) -> Result<(), PmemError> {
        let entries = self.entries(pool)?;
        for (addr, data) in entries.iter().skip(skip).rev() {
            pool.write_bytes(*addr, data)?;
            pool.flush(*addr, data.len() as u64)?;
        }
        Ok(())
    }

    /// Number of valid entries currently in the log.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn len(&self, pool: &PmemPool) -> Result<usize, PmemError> {
        Ok(self.entries(pool)?.len())
    }

    /// Returns `true` if the log holds no entries.
    ///
    /// v1 reads the tail word; v2 probes the first data line (a valid first
    /// line always starts with an entry header, which is odd and nonzero).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn is_empty(&self, pool: &PmemPool) -> Result<bool, PmemError> {
        let w0 = pool.read_u64(self.base)?;
        if w0 != V2_MAGIC {
            return Ok(w0 == 0);
        }
        if self.v2_line_count() == 0 {
            return Ok(true);
        }
        let gen = pool.read_u64(self.base.add(8))?;
        let raw = pool.read_bytes(PAddr::new(self.v2_data_base()), LINE)?;
        let mut w = [0u64; 8];
        for (i, c) in raw.chunks_exact(8).enumerate() {
            w[i] = u64::from_le_bytes(c.try_into().unwrap());
        }
        Ok(w[7] != v2_marker(gen, &w) || w[0] & 1 == 0)
    }

    /// Truncates the log (persistently, one fence). v1 zeroes the tail; v2
    /// bumps the generation, invalidating every line's marker at once
    /// without touching the data region.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn clear(&self, pool: &PmemPool) -> Result<(), PmemError> {
        self.reset_unfenced(pool)?;
        pool.fence();
        Ok(())
    }

    /// Truncates the log without fencing — the caller's next fence orders
    /// the truncation (the runtime bundles it with the begin fence when
    /// lazily clearing a previous transaction's stale log).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn reset_unfenced(&self, pool: &PmemPool) -> Result<(), PmemError> {
        let w0 = pool.read_u64(self.base)?;
        if w0 == V2_MAGIC {
            let gen = pool.read_u64(self.base.add(8))?;
            pool.write_u64(self.base.add(8), gen + 1)?;
            pool.flush(self.base.add(8), 8)?;
        } else {
            pool.write_u64(self.base, 0)?;
            pool.flush(self.base, 8)?;
        }
        Ok(())
    }
}

/// Result of a v2 region scan.
struct V2Scan {
    gen: u64,
    entries: Vec<(PAddr, Vec<u8>)>,
    /// Word-stream position one past the last complete entry.
    stream_end: u64,
}

/// Line marker: binds the log generation to the popcount of the payload
/// words, so a line from an earlier generation, a never-written (zero) line
/// and a line whose payload words were lost all fail validation. Lines are
/// single-cache-line stores, which are failure-atomic in the media model
/// (and on real hardware at 8-byte granularity the per-word popcount
/// contribution makes a mixed old/new line astronomically unlikely to
/// validate).
fn v2_marker(gen: u64, words: &[u64; 8]) -> u64 {
    let pop: u32 = words[..PAYLOAD_WORDS].iter().map(|w| w.count_ones()).sum();
    (gen << 9) | pop as u64
}

/// Volatile cursor state of a [`LogWriter`].
#[derive(Debug, Clone)]
enum WriterPos {
    V1 {
        /// Cached tail — validated once at adoption, never re-read.
        tail: u64,
    },
    V2(V2Pos),
}

#[derive(Debug, Clone)]
struct V2Pos {
    generation: u64,
    /// Data line the staged buffer maps to.
    line_idx: u64,
    /// Next free payload word within the staged line (0..7).
    word_idx: usize,
    /// The staged line (word 7 recomputed on every store).
    line: [u64; 8],
    /// Staged line holds content not yet covered by a flush.
    dirty: bool,
    /// Flushes were issued since the last fence.
    unfenced: bool,
}

impl V2Pos {
    fn line_addr(&self, log: &Ulog) -> PAddr {
        PAddr::new(log.v2_data_base() + self.line_idx * LINE)
    }

    fn store_staged(&mut self, pool: &PmemPool, log: &Ulog) -> Result<(), PmemError> {
        self.line[7] = v2_marker(self.generation, &self.line);
        let mut bytes = [0u8; LINE as usize];
        for (i, w) in self.line.iter().enumerate() {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        pool.write_bytes(self.line_addr(log), &bytes)
    }

    fn push_word(&mut self, pool: &PmemPool, log: &Ulog, w: u64) -> Result<(), PmemError> {
        self.line[self.word_idx] = w;
        self.word_idx += 1;
        if self.word_idx == PAYLOAD_WORDS {
            // Line full: store it with its marker and issue the one
            // streaming flush this line will ever need.
            self.store_staged(pool, log)?;
            pool.flush(self.line_addr(log), LINE)?;
            log.bump_kind_flush(pool);
            self.unfenced = true;
            self.dirty = false;
            self.line = [0; 8];
            self.line_idx += 1;
            self.word_idx = 0;
        } else {
            self.dirty = true;
        }
        Ok(())
    }
}

/// A volatile append cursor over a [`Ulog`] — the hot-path handle.
///
/// The writer caches everything an append needs (format, v1 tail or v2
/// generation + line position + staged line buffer), so appends never
/// re-read persistent log state. On a v2 log, appends stage words in the
/// 64-byte line buffer and flush once per *full* line; durability is
/// deferred to [`sync`](Self::sync), the ordering point. On a v1 log each
/// append keeps the classic persist-entry-then-tail, one-fence discipline
/// (the format has no torn-tail protection without it), but the cached tail
/// still removes the per-append tail read.
///
/// Dropping a writer without syncing loses no data that was already synced;
/// unsynced v2 appends are staged in the pool but not yet guaranteed
/// durable — exactly the window the marker discipline makes recoverable as
/// a clean prefix.
#[derive(Debug)]
pub struct LogWriter {
    log: Ulog,
    pos: Option<WriterPos>,
}

impl LogWriter {
    /// Creates a lazy writer; the log image is adopted (position read and
    /// validated) on first use.
    pub fn new(log: Ulog) -> LogWriter {
        LogWriter { log, pos: None }
    }

    /// Creates a writer and adopts the log image immediately: reads the
    /// format, validates the tail (v1) or scans to the end of the valid
    /// entry stream (v2).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::CorruptPool`] if a v1 tail exceeds the buffer
    /// and [`PmemError::OutOfBounds`] on a corrupt descriptor.
    pub fn attach(pool: &PmemPool, log: Ulog) -> Result<LogWriter, PmemError> {
        let mut w = LogWriter::new(log);
        w.ensure_attached(pool)?;
        Ok(w)
    }

    /// The underlying log descriptor.
    pub fn log(&self) -> Ulog {
        self.log
    }

    fn ensure_attached(&mut self, pool: &PmemPool) -> Result<&mut WriterPos, PmemError> {
        if self.pos.is_none() {
            let w0 = pool.read_u64(self.log.base)?;
            let pos = if w0 == V2_MAGIC {
                let scan = self.log.v2_scan(pool)?;
                let line_idx = scan.stream_end / PAYLOAD_WORDS as u64;
                let word_idx = (scan.stream_end % PAYLOAD_WORDS as u64) as usize;
                let mut line = [0u64; 8];
                if word_idx > 0 {
                    let raw = pool
                        .read_bytes(PAddr::new(self.log.v2_data_base() + line_idx * LINE), LINE)?;
                    for (i, c) in raw.chunks_exact(8).enumerate() {
                        line[i] = u64::from_le_bytes(c.try_into().unwrap());
                    }
                    // Words past the resume point are stale stream bytes
                    // (e.g. a dropped trailing entry); zero them so the
                    // terminator and marker discipline start clean.
                    for w in line.iter_mut().skip(word_idx) {
                        *w = 0;
                    }
                }
                WriterPos::V2(V2Pos {
                    generation: scan.gen,
                    line_idx,
                    word_idx,
                    line,
                    dirty: word_idx > 0,
                    unfenced: false,
                })
            } else {
                if DATA_OFF + w0 > self.log.capacity {
                    return Err(PmemError::CorruptPool(format!(
                        "v1 log tail {} exceeds capacity {}",
                        w0, self.log.capacity
                    )));
                }
                WriterPos::V1 { tail: w0 }
            };
            self.pos = Some(pos);
        }
        Ok(self.pos.as_mut().unwrap())
    }

    /// Returns `true` if the adopted log holds no entries (adopting if
    /// necessary).
    ///
    /// # Errors
    ///
    /// Propagates adoption errors.
    pub fn is_empty(&mut self, pool: &PmemPool) -> Result<bool, PmemError> {
        Ok(match self.ensure_attached(pool)? {
            WriterPos::V1 { tail } => *tail == 0,
            WriterPos::V2(p) => p.line_idx == 0 && p.word_idx == 0,
        })
    }

    /// Appends an entry recording that `addr` held `old`.
    ///
    /// v2: words are staged in the line buffer; full lines get one
    /// streaming flush each; **no fence is issued** — the entry is
    /// guaranteed durable only after [`sync`](Self::sync) returns. v1:
    /// classic one-fence append (durable on return), with the tail cached.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::LogFull`] if the entry does not fit and
    /// [`PmemError::OutOfBounds`] on a corrupt descriptor.
    pub fn append(&mut self, pool: &PmemPool, addr: PAddr, old: &[u8]) -> Result<(), PmemError> {
        let log = self.log;
        match self.ensure_attached(pool)? {
            WriterPos::V1 { tail } => {
                let need = ENTRY_HDR + old.len() as u64;
                if DATA_OFF + *tail + need > log.capacity {
                    return Err(PmemError::LogFull {
                        needed: need,
                        capacity: log.capacity,
                    });
                }
                let entry = log.base.add(DATA_OFF + *tail);
                pool.write_u64(entry, addr.offset())?;
                pool.write_u64(entry.add(8), old.len() as u64)?;
                pool.write_u64(
                    entry.add(16),
                    checksum(addr.offset(), old.len() as u64, old),
                )?;
                pool.write_bytes(entry.add(24), old)?;
                pool.flush(entry, need)?;
                log.bump_kind_flush(pool);
                pool.write_u64(log.base, *tail + need)?;
                pool.flush(log.base, 8)?;
                log.bump_kind_flush(pool);
                pool.fence();
                log.bump_kind_fence(pool);
                *tail += need;
            }
            WriterPos::V2(p) => {
                let len = old.len() as u64;
                let need_words = 2 + len.div_ceil(8);
                let total_words = log.v2_line_count() * PAYLOAD_WORDS as u64;
                let used_words = p.line_idx * PAYLOAD_WORDS as u64 + p.word_idx as u64;
                if used_words + need_words > total_words {
                    return Err(PmemError::LogFull {
                        needed: V2_ENTRY_OVERHEAD + len,
                        capacity: total_words * 8,
                    });
                }
                p.push_word(pool, &log, (len << 1) | 1)?;
                p.push_word(pool, &log, addr.offset())?;
                for chunk in old.chunks(8) {
                    let mut b = [0u8; 8];
                    b[..chunk.len()].copy_from_slice(chunk);
                    p.push_word(pool, &log, u64::from_le_bytes(b))?;
                }
                if p.dirty {
                    // Store the partial line so readers (and the crash
                    // model) see the current state; its flush is deferred.
                    p.store_staged(pool, &log)?;
                }
            }
        }
        pool.trace_app_event(
            clobber_trace::EventKind::UlogAppend,
            0,
            addr.offset(),
            old.len() as u64,
        );
        Ok(())
    }

    /// Makes every appended entry durable: flushes the staged partial line
    /// (if any) and issues one fence covering all line flushes since the
    /// last sync. No-op if nothing is pending (v1 appends are already
    /// durable).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] on a corrupt descriptor.
    pub fn sync(&mut self, pool: &PmemPool) -> Result<(), PmemError> {
        self.sync_with(pool, |p| p.fence())
    }

    /// [`sync`](Self::sync) with the ordering fence delegated to `fence` —
    /// the hook the runtime uses to route log fences through its
    /// group-commit coalescer. `fence` must guarantee an `sfence` has been
    /// issued (possibly by another thread) after it was called.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] on a corrupt descriptor.
    pub fn sync_with(
        &mut self,
        pool: &PmemPool,
        fence: impl FnOnce(&PmemPool),
    ) -> Result<(), PmemError> {
        let log = self.log;
        if let Some(WriterPos::V2(p)) = self.pos.as_mut() {
            if p.dirty {
                pool.flush(p.line_addr(&log), LINE)?;
                log.bump_kind_flush(pool);
                p.dirty = false;
                p.unfenced = true;
            }
            if p.unfenced {
                fence(pool);
                log.bump_kind_fence(pool);
                p.unfenced = false;
            }
        }
        Ok(())
    }

    /// Truncates the log without fencing and resets the cursor to the
    /// start; the caller's next fence orders the truncation.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] on a corrupt descriptor.
    pub fn reset_unfenced(&mut self, pool: &PmemPool) -> Result<(), PmemError> {
        let w0 = pool.read_u64(self.log.base)?;
        if w0 == V2_MAGIC {
            let gen = pool.read_u64(self.log.base.add(8))?;
            pool.write_u64(self.log.base.add(8), gen + 1)?;
            pool.flush(self.log.base.add(8), 8)?;
            self.pos = Some(WriterPos::V2(V2Pos {
                generation: gen + 1,
                line_idx: 0,
                word_idx: 0,
                line: [0; 8],
                dirty: false,
                unfenced: false,
            }));
        } else {
            pool.write_u64(self.log.base, 0)?;
            pool.flush(self.log.base, 8)?;
            self.pos = Some(WriterPos::V1 { tail: 0 });
        }
        Ok(())
    }

    /// Adopts the log and, if it holds stale entries, truncates it without
    /// fencing (the caller's next fence orders the truncation) — the
    /// runtime's per-transaction fast path: one header probe, no stream
    /// scan, and a known-empty cursor afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] on a corrupt descriptor.
    pub fn ensure_empty_unfenced(&mut self, pool: &PmemPool) -> Result<(), PmemError> {
        if self.log.is_empty(pool)? {
            let w0 = pool.read_u64(self.log.base)?;
            self.pos = Some(if w0 == V2_MAGIC {
                let gen = pool.read_u64(self.log.base.add(8))?;
                WriterPos::V2(V2Pos {
                    generation: gen,
                    line_idx: 0,
                    word_idx: 0,
                    line: [0; 8],
                    dirty: false,
                    unfenced: false,
                })
            } else {
                WriterPos::V1 { tail: 0 }
            });
            Ok(())
        } else {
            self.reset_unfenced(pool)
        }
    }
}

/// FNV-1a over the address, the entry length, and the payload; cheap
/// torn-entry detection for the v1 format.
///
/// Binding `len` into the hash matters for torn appends: if a stale
/// in-bounds length field survives from an earlier (cleared) entry, it must
/// not be able to pair with coincidentally checksum-valid payload bytes. An
/// addr+payload-only hash leaves the length field unauthenticated.
fn checksum(addr: u64, len: u64, data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr
        .to_le_bytes()
        .iter()
        .chain(len.to_le_bytes().iter())
        .chain(data.iter())
    {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashConfig;
    use crate::pool::PoolOptions;

    fn setup() -> (PmemPool, Ulog) {
        let pool = PmemPool::create(PoolOptions::crash_sim(1 << 20)).unwrap();
        let base = pool.alloc(4096).unwrap();
        let log = Ulog::format(&pool, base, 4096).unwrap();
        (pool, log)
    }

    fn setup_v2() -> (PmemPool, Ulog) {
        let pool = PmemPool::create(PoolOptions::crash_sim(1 << 20)).unwrap();
        let base = pool.alloc(4096).unwrap();
        let log = Ulog::format_v2(&pool, base, 4096).unwrap();
        (pool, log)
    }

    #[test]
    fn empty_log_has_no_entries() {
        let (pool, log) = setup();
        assert!(log.is_empty(&pool).unwrap());
        assert_eq!(log.len(&pool).unwrap(), 0);
        assert!(log.entries(&pool).unwrap().is_empty());
    }

    #[test]
    fn append_records_old_values_in_order() {
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(1000), b"aaaa").unwrap();
        log.append(&pool, PAddr::new(2000), b"bb").unwrap();
        let es = log.entries(&pool).unwrap();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0], (PAddr::new(1000), b"aaaa".to_vec()));
        assert_eq!(es[1], (PAddr::new(2000), b"bb".to_vec()));
    }

    #[test]
    fn append_uses_exactly_one_fence() {
        let (pool, log) = setup();
        let before = pool.stats().snapshot();
        log.append(&pool, PAddr::new(1000), &[1u8; 32]).unwrap();
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn apply_backwards_rolls_back_overwrites() {
        let (pool, log) = setup();
        let x = pool.alloc(16).unwrap();
        pool.write_bytes(x, b"old-old-").unwrap();
        pool.persist(x, 8).unwrap();
        log.append(&pool, x, b"old-old-").unwrap();
        pool.write_bytes(x, b"new-new-").unwrap();
        // Same address logged twice: rollback must restore the *first* old.
        log.append(&pool, x, b"new-new-").unwrap();
        pool.write_bytes(x, b"newest!!").unwrap();
        log.apply_backwards(&pool).unwrap();
        pool.fence();
        assert_eq!(pool.read_bytes(x, 8).unwrap(), b"old-old-");
    }

    #[test]
    fn appended_entry_survives_adversarial_crash() {
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(1234), b"payload!").unwrap();
        let p2 = pool.crash(&CrashConfig::drop_all(1)).unwrap();
        let es = log.entries(&p2).unwrap();
        assert_eq!(es, vec![(PAddr::new(1234), b"payload!".to_vec())]);
    }

    #[test]
    fn log_full_is_reported() {
        let pool = PmemPool::create(PoolOptions::performance(1 << 20)).unwrap();
        let base = pool.alloc(128).unwrap();
        let log = Ulog::format(&pool, base, 128).unwrap();
        log.append(&pool, PAddr::new(8), &[0u8; 64]).unwrap();
        assert!(matches!(
            log.append(&pool, PAddr::new(8), &[0u8; 64]),
            Err(PmemError::LogFull { .. })
        ));
    }

    #[test]
    fn clear_truncates_persistently() {
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(8), b"x").unwrap();
        log.clear(&pool).unwrap();
        assert!(log.is_empty(&pool).unwrap());
        let p2 = pool.crash(&CrashConfig::drop_all(2)).unwrap();
        assert!(log.is_empty(&p2).unwrap());
    }

    #[test]
    fn torn_entry_is_ignored() {
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(512), b"good").unwrap();
        // Simulate a torn append: bump the tail without writing an entry.
        let tail = pool.read_u64(log.base()).unwrap();
        pool.write_u64(log.base(), tail + ENTRY_HDR + 4).unwrap();
        pool.persist(log.base(), 8).unwrap();
        let es = log.entries(&pool).unwrap();
        assert_eq!(es.len(), 1, "only the checksummed entry is visible");
    }

    #[test]
    fn entries_tolerate_length_running_past_tail() {
        let (pool, log) = setup();
        // Hand-craft a header whose length exceeds the tail.
        let entry = log.base().add(8);
        pool.write_u64(entry, 640).unwrap();
        pool.write_u64(entry.add(8), 10_000).unwrap();
        pool.write_u64(entry.add(16), 0).unwrap();
        pool.write_u64(log.base(), ENTRY_HDR + 8).unwrap();
        assert!(log.entries(&pool).unwrap().is_empty());
    }

    #[test]
    fn checksum_differs_for_different_addresses() {
        assert_ne!(checksum(1, 1, b"x"), checksum(2, 1, b"x"));
        assert_ne!(checksum(1, 1, b"x"), checksum(1, 1, b"y"));
    }

    #[test]
    fn checksum_binds_the_length_field() {
        // Regression for the torn-append hazard: a stale length paired with
        // the same payload bytes must not validate.
        assert_ne!(checksum(7, 4, b"abcd"), checksum(7, 8, b"abcd"));
        assert_ne!(checksum(7, 0, b""), checksum(7, 24, b""));
    }

    #[test]
    fn tampered_length_field_invalidates_the_entry() {
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(512), b"abcdefgh").unwrap();
        log.append(&pool, PAddr::new(640), b"ij").unwrap();
        // Shrink the first entry's recorded length in place. Its first four
        // payload bytes are intact and in bounds, but the checksum binds the
        // length, so the entry (and everything after it) is rejected.
        let entry = log.base().add(DATA_OFF);
        pool.write_u64(entry.add(8), 4).unwrap();
        pool.persist(entry.add(8), 8).unwrap();
        assert!(log.entries(&pool).unwrap().is_empty());
    }

    // ------------------------------------------------------------------
    // v2 format
    // ------------------------------------------------------------------

    #[test]
    fn v2_round_trips_entries_of_all_sizes() {
        let (pool, log) = setup_v2();
        assert!(log.is_empty(&pool).unwrap());
        let payloads: Vec<Vec<u8>> = vec![
            b"x".to_vec(),
            b"eight__b".to_vec(),
            vec![7u8; 100],
            vec![],
            vec![0u8; 24], // all-zero payload must survive the popcount marker
        ];
        for (i, p) in payloads.iter().enumerate() {
            log.append(&pool, PAddr::new(1000 + i as u64), p).unwrap();
        }
        let es = log.entries(&pool).unwrap();
        assert_eq!(es.len(), payloads.len());
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(es[i], (PAddr::new(1000 + i as u64), p.clone()));
        }
        assert!(!log.is_empty(&pool).unwrap());
    }

    #[test]
    fn v2_synced_entries_survive_adversarial_crash() {
        let (pool, log) = setup_v2();
        let mut w = LogWriter::attach(&pool, log).unwrap();
        for i in 0..10u64 {
            w.append(&pool, PAddr::new(512 + i * 8), &i.to_le_bytes())
                .unwrap();
        }
        w.sync(&pool).unwrap();
        let p2 = pool.crash(&CrashConfig::drop_all(99)).unwrap();
        let es = log.entries(&p2).unwrap();
        assert_eq!(es.len(), 10, "all synced entries survive drop_all");
        for (i, e) in es.iter().enumerate() {
            assert_eq!(e.1, (i as u64).to_le_bytes().to_vec());
        }
    }

    #[test]
    fn v2_unsynced_tail_recovers_as_clean_prefix() {
        // Append without ever syncing, crash with every unfenced line
        // dropped: the durable image must parse as a (possibly empty)
        // prefix of the appended entries — never garbage.
        for seed in 0..16u64 {
            let (pool, log) = setup_v2();
            let mut w = LogWriter::attach(&pool, log).unwrap();
            for i in 0..9u64 {
                w.append(&pool, PAddr::new(4096 + i * 16), &[i as u8; 12])
                    .unwrap();
            }
            let p2 = pool
                .crash(&CrashConfig {
                    p_dirty: 0.5,
                    p_flushed_unfenced: 0.5,
                    seed,
                })
                .unwrap();
            let es = log.entries(&p2).unwrap();
            assert!(es.len() <= 9, "seed {seed}: more entries than appended");
            for (i, e) in es.iter().enumerate() {
                assert_eq!(
                    *e,
                    (PAddr::new(4096 + i as u64 * 16), vec![i as u8; 12]),
                    "seed {seed}: prefix mismatch at {i}"
                );
            }
        }
    }

    #[test]
    fn v2_amortizes_flushes_to_one_per_line_and_defers_the_fence() {
        let (pool, log) = setup_v2();
        let mut w = LogWriter::attach(&pool, log).unwrap();
        let before = pool.stats().snapshot();
        // 8-byte payloads: 3 words per entry; 21 appends = 63 words = 9
        // exactly-full lines.
        for i in 0..21u64 {
            w.append(&pool, PAddr::new(2048 + i * 8), &i.to_le_bytes())
                .unwrap();
        }
        let mid = pool.stats().snapshot().delta(&before);
        assert_eq!(mid.flushes, 9, "one streaming flush per full line");
        assert_eq!(mid.fences, 0, "no fence until the ordering point");
        w.sync(&pool).unwrap();
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(d.fences, 1, "sync is the single ordering point");
        assert_eq!(d.flushes, 9, "nothing left to flush: lines were full");
        assert!(
            d.flushes * 2 <= 21,
            "amortized flushes-per-append must be well under v1's 2"
        );
        // And the appended data is all there.
        assert_eq!(log.len(&pool).unwrap(), 21);
    }

    #[test]
    fn v2_compat_append_uses_exactly_one_fence() {
        let (pool, log) = setup_v2();
        let before = pool.stats().snapshot();
        log.append(&pool, PAddr::new(1000), &[1u8; 32]).unwrap();
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn v2_clear_bumps_generation_and_survives_crash() {
        let (pool, log) = setup_v2();
        log.append(&pool, PAddr::new(8), b"stale").unwrap();
        assert!(!log.is_empty(&pool).unwrap());
        let before = pool.stats().snapshot();
        log.clear(&pool).unwrap();
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(d.fences, 1, "clear is one generation-bump fence");
        assert!(log.is_empty(&pool).unwrap());
        assert!(log.entries(&pool).unwrap().is_empty());
        let p2 = pool.crash(&CrashConfig::drop_all(3)).unwrap();
        assert!(log.is_empty(&p2).unwrap());
        // New appends after the bump are isolated from the old generation.
        log.append(&p2, PAddr::new(16), b"fresh").unwrap();
        assert_eq!(
            log.entries(&p2).unwrap(),
            vec![(PAddr::new(16), b"fresh".to_vec())]
        );
    }

    #[test]
    fn v2_torn_marker_word_drops_the_line_and_its_suffix() {
        let (pool, log) = setup_v2();
        // 28 single-word-payload entries = 84 words = 12 lines.
        for i in 0..28u64 {
            log.append(&pool, PAddr::new(512 + i * 8), &i.to_le_bytes())
                .unwrap();
        }
        assert_eq!(log.len(&pool).unwrap(), 28);
        // Corrupt the marker word of data line 3 at rest (a decayed or torn
        // line): every entry from that line on must vanish, and the entries
        // before it must be exactly the prefix.
        let data = log.v2_data_base();
        let p2 = pool.crash(&CrashConfig::drop_all(7)).unwrap();
        p2.inject_bit_corruption(PAddr::new(data + 3 * 64 + 56), 8, 42, 3)
            .unwrap();
        let es = log.entries(&p2).unwrap();
        // 7 payload words/line: line 3 starts at word 21 = entry 7.
        assert_eq!(es.len(), 7, "entries from the torn line on are dropped");
        for (i, e) in es.iter().enumerate() {
            assert_eq!(e.0, PAddr::new(512 + i as u64 * 8));
        }
    }

    #[test]
    fn v2_writer_adopts_mid_stream_and_continues() {
        let (pool, log) = setup_v2();
        log.append(&pool, PAddr::new(100), b"first").unwrap();
        log.append(&pool, PAddr::new(200), b"second-entry").unwrap();
        // A fresh writer (no shared volatile state) must resume after the
        // existing entries, not clobber them.
        let mut w = LogWriter::attach(&pool, log).unwrap();
        assert!(!w.is_empty(&pool).unwrap());
        w.append(&pool, PAddr::new(300), b"third").unwrap();
        w.sync(&pool).unwrap();
        let es = log.entries(&pool).unwrap();
        assert_eq!(es.len(), 3);
        assert_eq!(es[2], (PAddr::new(300), b"third".to_vec()));
    }

    #[test]
    fn v2_log_full_is_reported() {
        let pool = PmemPool::create(PoolOptions::performance(1 << 20)).unwrap();
        let base = pool.alloc(256).unwrap();
        let log = Ulog::format_v2(&pool, base, 256).unwrap();
        // At most 3 data lines = 21 payload words once the header line is
        // carved out; a 160-byte entry needs 22.
        assert!(matches!(
            log.append(&pool, PAddr::new(8), &[0u8; 160]),
            Err(PmemError::LogFull { .. })
        ));
        // Small entries fit until the words run out.
        let mut w = LogWriter::attach(&pool, log).unwrap();
        let mut appended = 0;
        while w.append(&pool, PAddr::new(8), &[1u8; 8]).is_ok() {
            appended += 1;
        }
        assert_eq!(appended, 7, "21 payload words / 3 words per entry");
    }

    #[test]
    fn v1_writer_caches_the_tail_and_reads_nothing_per_append() {
        let (pool, log) = setup();
        let mut w = LogWriter::attach(&pool, log).unwrap();
        let before = pool.stats().snapshot();
        for i in 0..5u64 {
            w.append(&pool, PAddr::new(512 + i * 8), &i.to_le_bytes())
                .unwrap();
        }
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(d.reads, 0, "cached tail: no persistent reads per append");
        assert_eq!(d.fences, 5, "v1 keeps its per-append fence discipline");
        assert_eq!(log.len(&pool).unwrap(), 5);
    }

    #[test]
    fn v1_writer_rejects_corrupt_tail_at_adoption() {
        let (pool, log) = setup();
        pool.write_u64(log.base(), log.capacity() + 64).unwrap();
        pool.persist(log.base(), 8).unwrap();
        assert!(matches!(
            LogWriter::attach(&pool, log),
            Err(PmemError::CorruptPool(_))
        ));
    }

    #[test]
    fn cross_open_v1_image_under_v2_code() {
        // A v1 image written through the legacy path recovers through the
        // format-dispatching entry points, and a LogWriter keeps appending
        // to it in v1 discipline.
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(700), b"v1-data").unwrap();
        let p2 = pool.crash(&CrashConfig::drop_all(11)).unwrap();
        assert_eq!(log.stored_format(&p2).unwrap(), LogFormat::V1);
        assert_eq!(
            log.entries(&p2).unwrap(),
            vec![(PAddr::new(700), b"v1-data".to_vec())]
        );
        let mut w = LogWriter::attach(&p2, log).unwrap();
        w.append(&p2, PAddr::new(800), b"more").unwrap();
        w.sync(&p2).unwrap();
        assert_eq!(log.len(&p2).unwrap(), 2);
    }

    #[test]
    fn cross_open_empty_logs_agree_across_formats() {
        // An empty v1 image and an empty v2 image both report empty through
        // every dispatching accessor, before and after a crash.
        let pool = PmemPool::create(PoolOptions::crash_sim(1 << 20)).unwrap();
        let b1 = pool.alloc(1024).unwrap();
        let b2 = pool.alloc(1024).unwrap();
        let v1 = Ulog::format(&pool, b1, 1024).unwrap();
        let v2 = Ulog::format_v2(&pool, b2, 1024).unwrap();
        assert_eq!(v1.stored_format(&pool).unwrap(), LogFormat::V1);
        assert_eq!(v2.stored_format(&pool).unwrap(), LogFormat::V2);
        let p2 = pool.crash(&CrashConfig::drop_all(5)).unwrap();
        for log in [v1, v2] {
            assert!(log.is_empty(&p2).unwrap());
            assert!(log.entries(&p2).unwrap().is_empty());
            assert_eq!(log.len(&p2).unwrap(), 0);
            // And both clear idempotently.
            log.clear(&p2).unwrap();
            assert!(log.is_empty(&p2).unwrap());
        }
    }

    #[test]
    fn kind_counters_attribute_flushes_and_fences() {
        let (pool, log) = setup_v2();
        let clog = log.with_kind(LogKind::Clobber);
        let before = pool.stats().snapshot();
        let mut w = LogWriter::attach(&pool, clog).unwrap();
        for i in 0..21u64 {
            w.append(&pool, PAddr::new(2048 + i * 8), &i.to_le_bytes())
                .unwrap();
        }
        w.sync(&pool).unwrap();
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(d.clog_flushes, 9);
        assert_eq!(d.clog_fences, 1);
        assert_eq!(d.rlog_flushes, 0);
        assert_eq!((d.flushes, d.fences), (9, 1), "attribution matches totals");
    }

    #[test]
    fn v2_reset_unfenced_then_fence_is_clear() {
        let (pool, log) = setup_v2();
        log.append(&pool, PAddr::new(8), b"stale").unwrap();
        let mut w = LogWriter::attach(&pool, log).unwrap();
        w.reset_unfenced(&pool).unwrap();
        pool.fence();
        assert!(log.is_empty(&pool).unwrap());
        // The writer's cursor is reset too: new appends land at the start.
        w.append(&pool, PAddr::new(16), b"fresh").unwrap();
        w.sync(&pool).unwrap();
        assert_eq!(
            log.entries(&pool).unwrap(),
            vec![(PAddr::new(16), b"fresh".to_vec())]
        );
    }

    #[test]
    fn marker_binds_generation_and_popcount() {
        let mut words = [0u64; 8];
        words[0] = (8 << 1) | 1;
        words[1] = 4096;
        words[2] = 0xFF;
        let m1 = v2_marker(1, &words);
        let m2 = v2_marker(2, &words);
        assert_ne!(m1, m2, "generation is bound");
        let mut tampered = words;
        tampered[2] = 0xFE;
        assert_ne!(m1, v2_marker(1, &tampered), "payload bits are bound");
        assert_ne!(m1, 0, "a valid marker is never the zero word");
    }
}
