//! PMDK-style undo-log buffer.
//!
//! Clobber-NVM's `clobber_log` is "built over PMDK's undo log API" (paper
//! §4.2); the classical-undo baseline uses the very same primitive, which is
//! what makes the paper's log-count/log-size comparison apples-to-apples.
//!
//! A [`Ulog`] is a pre-allocated persistent buffer:
//!
//! ```text
//! [tail: u64][entry][entry]...
//! entry = [addr: u64][len: u64][checksum: u64][old data: len bytes]
//! ```
//!
//! [`Ulog::append`] persists the entry *and* the new tail with one flush set
//! and **one fence**, so that the store it protects can only become durable
//! after its undo information is durable — the ordering invariant undo
//! logging needs. Entries carry a checksum so a torn append (tail durable,
//! entry not) is detected and treated as absent during recovery.

use crate::addr::PAddr;
use crate::pool::{PmemError, PmemPool};

const DATA_OFF: u64 = 8;
const ENTRY_HDR: u64 = 24;

/// Bytes of log-buffer metadata persisted per entry (address, length,
/// checksum) on top of the payload — counted when comparing "bytes written
/// to the log" across systems.
pub const ENTRY_OVERHEAD: u64 = ENTRY_HDR;

/// A persistent undo-log buffer at a fixed pool location.
///
/// The handle itself is a plain descriptor (base + capacity) and can be
/// freely copied; all state lives in the pool.
///
/// # Example
///
/// ```
/// use clobber_pmem::{PmemPool, PoolOptions, Ulog};
///
/// # fn main() -> Result<(), clobber_pmem::PmemError> {
/// let pool = PmemPool::create(PoolOptions::crash_sim(1 << 20))?;
/// let buf = pool.alloc(4096)?;
/// let log = Ulog::format(&pool, buf, 4096)?;
///
/// let x = pool.alloc(8)?;
/// pool.write_u64(x, 1)?;
/// pool.persist(x, 8)?;
///
/// log.append(&pool, x, &1u64.to_le_bytes())?; // record old value
/// pool.write_u64(x, 2)?; // overwrite
/// log.apply_backwards(&pool)?; // roll back
/// assert_eq!(pool.read_u64(x)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ulog {
    base: PAddr,
    capacity: u64,
}

impl Ulog {
    /// Adopts an existing formatted log at `base`.
    pub fn new(base: PAddr, capacity: u64) -> Ulog {
        Ulog { base, capacity }
    }

    /// Formats a fresh, empty log in `capacity` bytes at `base` and persists
    /// the empty state.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the buffer exceeds the pool.
    pub fn format(pool: &PmemPool, base: PAddr, capacity: u64) -> Result<Ulog, PmemError> {
        let log = Ulog { base, capacity };
        pool.write_u64(base, 0)?;
        pool.persist(base, 8)?;
        Ok(log)
    }

    /// The log's base address in the pool.
    pub fn base(&self) -> PAddr {
        self.base
    }

    /// The log's capacity in bytes (including the tail word).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Appends an entry recording that `addr` held `old` — with exactly one
    /// fence, after which the entry is durable. The caller may then safely
    /// overwrite `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::LogFull`] if the entry does not fit and
    /// [`PmemError::OutOfBounds`] on a corrupt descriptor.
    pub fn append(&self, pool: &PmemPool, addr: PAddr, old: &[u8]) -> Result<(), PmemError> {
        let tail = pool.read_u64(self.base)?;
        let need = ENTRY_HDR + old.len() as u64;
        if DATA_OFF + tail + need > self.capacity {
            return Err(PmemError::LogFull {
                needed: need,
                capacity: self.capacity,
            });
        }
        let entry = self.base.add(DATA_OFF + tail);
        pool.write_u64(entry, addr.offset())?;
        pool.write_u64(entry.add(8), old.len() as u64)?;
        pool.write_u64(
            entry.add(16),
            checksum(addr.offset(), old.len() as u64, old),
        )?;
        pool.write_bytes(entry.add(24), old)?;
        pool.flush(entry, need)?;
        pool.write_u64(self.base, tail + need)?;
        pool.flush(self.base, 8)?;
        pool.fence();
        pool.trace_app_event(
            clobber_trace::EventKind::UlogAppend,
            0,
            addr.offset(),
            old.len() as u64,
        );
        Ok(())
    }

    /// Appends several entries with a single fence — the redo-logging
    /// pattern: all entries and the tail are flushed together and ordered by
    /// one fence, which is why redo systems need fewer ordering instructions
    /// per transaction than undo systems.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::LogFull`] if the batch does not fit (the log is
    /// left unchanged) and [`PmemError::OutOfBounds`] on a corrupt
    /// descriptor.
    pub fn append_batch(&self, pool: &PmemPool, items: &[(PAddr, &[u8])]) -> Result<(), PmemError> {
        let tail = pool.read_u64(self.base)?;
        let need: u64 = items.iter().map(|(_, d)| ENTRY_HDR + d.len() as u64).sum();
        if DATA_OFF + tail + need > self.capacity {
            return Err(PmemError::LogFull {
                needed: need,
                capacity: self.capacity,
            });
        }
        let mut off = tail;
        for (addr, data) in items {
            let entry = self.base.add(DATA_OFF + off);
            pool.write_u64(entry, addr.offset())?;
            pool.write_u64(entry.add(8), data.len() as u64)?;
            pool.write_u64(
                entry.add(16),
                checksum(addr.offset(), data.len() as u64, data),
            )?;
            pool.write_bytes(entry.add(24), data)?;
            off += ENTRY_HDR + data.len() as u64;
        }
        pool.flush(self.base.add(DATA_OFF + tail), need)?;
        pool.write_u64(self.base, tail + need)?;
        pool.flush(self.base, 8)?;
        pool.fence();
        for (addr, data) in items {
            pool.trace_app_event(
                clobber_trace::EventKind::UlogAppend,
                0,
                addr.offset(),
                data.len() as u64,
            );
        }
        Ok(())
    }

    /// Writes all logged values in append order (redo replay), flushing each
    /// range. The caller fences.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn apply_forwards(&self, pool: &PmemPool) -> Result<(), PmemError> {
        for (addr, data) in self.entries(pool)? {
            pool.write_bytes(addr, &data)?;
            pool.flush(addr, data.len() as u64)?;
        }
        Ok(())
    }

    /// Returns all valid entries in append order as `(addr, old_data)`.
    ///
    /// Iteration stops at the first entry whose checksum fails (a torn
    /// append).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn entries(&self, pool: &PmemPool) -> Result<Vec<(PAddr, Vec<u8>)>, PmemError> {
        let tail = pool.read_u64(self.base)?;
        let mut out = Vec::new();
        let mut off = 0u64;
        while off + ENTRY_HDR <= tail {
            let entry = self.base.add(DATA_OFF + off);
            let addr = pool.read_u64(entry)?;
            let len = pool.read_u64(entry.add(8))?;
            let sum = pool.read_u64(entry.add(16))?;
            if off + ENTRY_HDR + len > tail {
                break; // torn: length runs past the tail
            }
            let data = pool.read_bytes(entry.add(24), len)?;
            if checksum(addr, len, &data) != sum {
                break; // torn: payload never became durable
            }
            out.push((PAddr::new(addr), data));
            off += ENTRY_HDR + len;
        }
        Ok(out)
    }

    /// Restores all logged old values, most recent first (classical undo
    /// rollback order), flushing each restored range. The caller fences.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn apply_backwards(&self, pool: &PmemPool) -> Result<(), PmemError> {
        let entries = self.entries(pool)?;
        for (addr, data) in entries.iter().rev() {
            pool.write_bytes(*addr, data)?;
            pool.flush(*addr, data.len() as u64)?;
        }
        Ok(())
    }

    /// Number of valid entries currently in the log.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn len(&self, pool: &PmemPool) -> Result<usize, PmemError> {
        Ok(self.entries(pool)?.len())
    }

    /// Returns `true` if the log holds no entries.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn is_empty(&self, pool: &PmemPool) -> Result<bool, PmemError> {
        Ok(pool.read_u64(self.base)? == 0)
    }

    /// Truncates the log (persistently, one fence).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the log descriptor is corrupt.
    pub fn clear(&self, pool: &PmemPool) -> Result<(), PmemError> {
        pool.write_u64(self.base, 0)?;
        pool.flush(self.base, 8)?;
        pool.fence();
        Ok(())
    }
}

/// FNV-1a over the address, the entry length, and the payload; cheap
/// torn-entry detection.
///
/// Binding `len` into the hash matters for torn appends: if a stale
/// in-bounds length field survives from an earlier (cleared) entry, it must
/// not be able to pair with coincidentally checksum-valid payload bytes. An
/// addr+payload-only hash leaves the length field unauthenticated.
fn checksum(addr: u64, len: u64, data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr
        .to_le_bytes()
        .iter()
        .chain(len.to_le_bytes().iter())
        .chain(data.iter())
    {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashConfig;
    use crate::pool::PoolOptions;

    fn setup() -> (PmemPool, Ulog) {
        let pool = PmemPool::create(PoolOptions::crash_sim(1 << 20)).unwrap();
        let base = pool.alloc(4096).unwrap();
        let log = Ulog::format(&pool, base, 4096).unwrap();
        (pool, log)
    }

    #[test]
    fn empty_log_has_no_entries() {
        let (pool, log) = setup();
        assert!(log.is_empty(&pool).unwrap());
        assert_eq!(log.len(&pool).unwrap(), 0);
        assert!(log.entries(&pool).unwrap().is_empty());
    }

    #[test]
    fn append_records_old_values_in_order() {
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(1000), b"aaaa").unwrap();
        log.append(&pool, PAddr::new(2000), b"bb").unwrap();
        let es = log.entries(&pool).unwrap();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0], (PAddr::new(1000), b"aaaa".to_vec()));
        assert_eq!(es[1], (PAddr::new(2000), b"bb".to_vec()));
    }

    #[test]
    fn append_uses_exactly_one_fence() {
        let (pool, log) = setup();
        let before = pool.stats().snapshot();
        log.append(&pool, PAddr::new(1000), &[1u8; 32]).unwrap();
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn apply_backwards_rolls_back_overwrites() {
        let (pool, log) = setup();
        let x = pool.alloc(16).unwrap();
        pool.write_bytes(x, b"old-old-").unwrap();
        pool.persist(x, 8).unwrap();
        log.append(&pool, x, b"old-old-").unwrap();
        pool.write_bytes(x, b"new-new-").unwrap();
        // Same address logged twice: rollback must restore the *first* old.
        log.append(&pool, x, b"new-new-").unwrap();
        pool.write_bytes(x, b"newest!!").unwrap();
        log.apply_backwards(&pool).unwrap();
        pool.fence();
        assert_eq!(pool.read_bytes(x, 8).unwrap(), b"old-old-");
    }

    #[test]
    fn appended_entry_survives_adversarial_crash() {
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(1234), b"payload!").unwrap();
        let p2 = pool.crash(&CrashConfig::drop_all(1)).unwrap();
        let es = log.entries(&p2).unwrap();
        assert_eq!(es, vec![(PAddr::new(1234), b"payload!".to_vec())]);
    }

    #[test]
    fn log_full_is_reported() {
        let pool = PmemPool::create(PoolOptions::performance(1 << 20)).unwrap();
        let base = pool.alloc(128).unwrap();
        let log = Ulog::format(&pool, base, 128).unwrap();
        log.append(&pool, PAddr::new(8), &[0u8; 64]).unwrap();
        assert!(matches!(
            log.append(&pool, PAddr::new(8), &[0u8; 64]),
            Err(PmemError::LogFull { .. })
        ));
    }

    #[test]
    fn clear_truncates_persistently() {
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(8), b"x").unwrap();
        log.clear(&pool).unwrap();
        assert!(log.is_empty(&pool).unwrap());
        let p2 = pool.crash(&CrashConfig::drop_all(2)).unwrap();
        assert!(log.is_empty(&p2).unwrap());
    }

    #[test]
    fn torn_entry_is_ignored() {
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(512), b"good").unwrap();
        // Simulate a torn append: bump the tail without writing an entry.
        let tail = pool.read_u64(log.base()).unwrap();
        pool.write_u64(log.base(), tail + ENTRY_HDR + 4).unwrap();
        pool.persist(log.base(), 8).unwrap();
        let es = log.entries(&pool).unwrap();
        assert_eq!(es.len(), 1, "only the checksummed entry is visible");
    }

    #[test]
    fn entries_tolerate_length_running_past_tail() {
        let (pool, log) = setup();
        // Hand-craft a header whose length exceeds the tail.
        let entry = log.base().add(8);
        pool.write_u64(entry, 640).unwrap();
        pool.write_u64(entry.add(8), 10_000).unwrap();
        pool.write_u64(entry.add(16), 0).unwrap();
        pool.write_u64(log.base(), ENTRY_HDR + 8).unwrap();
        assert!(log.entries(&pool).unwrap().is_empty());
    }

    #[test]
    fn checksum_differs_for_different_addresses() {
        assert_ne!(checksum(1, 1, b"x"), checksum(2, 1, b"x"));
        assert_ne!(checksum(1, 1, b"x"), checksum(1, 1, b"y"));
    }

    #[test]
    fn checksum_binds_the_length_field() {
        // Regression for the torn-append hazard: a stale length paired with
        // the same payload bytes must not validate.
        assert_ne!(checksum(7, 4, b"abcd"), checksum(7, 8, b"abcd"));
        assert_ne!(checksum(7, 0, b""), checksum(7, 24, b""));
    }

    #[test]
    fn tampered_length_field_invalidates_the_entry() {
        let (pool, log) = setup();
        log.append(&pool, PAddr::new(512), b"abcdefgh").unwrap();
        log.append(&pool, PAddr::new(640), b"ij").unwrap();
        // Shrink the first entry's recorded length in place. Its first four
        // payload bytes are intact and in bounds, but the checksum binds the
        // length, so the entry (and everything after it) is rejected.
        let entry = log.base().add(DATA_OFF);
        pool.write_u64(entry.add(8), 4).unwrap();
        pool.persist(entry.add(8), 8).unwrap();
        assert!(log.entries(&pool).unwrap().is_empty());
    }
}
