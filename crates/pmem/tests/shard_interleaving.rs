//! Deterministic-schedule interleaving tests: persist-event numbering is
//! shard-count-invariant.
//!
//! A fixed single-threaded workload issues the same sequence of persist
//! events (stores, flushes, fences) no matter how the address space is
//! partitioned, because event numbering happens on the pool's single fault
//! mutex *before* any shard is consulted. These tests pin that contract
//! concretely: the event count, every [`FaultPlan`] trip point, the
//! fault-event stream, and the post-trip durable media all agree across
//! shard counts 1, 4 and 16 (and `SingleThread`).

use clobber_pmem::{
    CrashConfig, FaultPlan, PAddr, PmemPool, PoolConcurrency, PoolOptions, CACHE_LINE,
};

const POOL_SIZE: u64 = 1 << 20;
const BLOCK: u64 = 16 << 10;

/// Concurrency modes under test; `GlobalLock` first as the reference.
const MODES: &[PoolConcurrency] = &[
    PoolConcurrency::GlobalLock,
    PoolConcurrency::Sharded { shards: 1 },
    PoolConcurrency::Sharded { shards: 4 },
    PoolConcurrency::Sharded { shards: 16 },
    PoolConcurrency::SingleThread,
];

fn create(concurrency: PoolConcurrency) -> (PmemPool, PAddr) {
    let pool =
        PmemPool::create(PoolOptions::crash_sim(POOL_SIZE).with_concurrency(concurrency)).unwrap();
    let base = pool.alloc(BLOCK).unwrap();
    (pool, base)
}

/// The fixed workload: a mix of single-line stores, multi-line stores that
/// straddle every shard boundary a 16-way split of `BLOCK` would create,
/// flushes over mixed ranges, and fences. Stops early once the pool dies.
fn run_workload(pool: &PmemPool, base: PAddr) {
    let sixteenth = BLOCK / 16; // one 16-way shard span inside the block
    for round in 0u64..3 {
        for i in 0..16u64 {
            // A store straddling the i-th sixteenth boundary.
            let off = (i * sixteenth).saturating_sub(8);
            let data = [round as u8 ^ i as u8; 80];
            if pool.write_bytes(base.add(off), &data).is_err() {
                return;
            }
        }
        if pool.flush(base, BLOCK / 2).is_err() {
            return;
        }
        pool.fence();
        // One large multi-line store (tear candidate) and its persist.
        let big = [0xA5u8 ^ round as u8; (4 * CACHE_LINE) as usize];
        if pool.write_bytes(base.add(round * 1024 + 32), &big).is_err() {
            return;
        }
        if pool
            .persist(base.add(round * 1024), 8 * CACHE_LINE)
            .is_err()
        {
            return;
        }
    }
}

/// The workload issues the same number of persist events at every shard
/// count.
#[test]
fn event_count_is_shard_count_invariant() {
    let mut counts = Vec::new();
    for &mode in MODES {
        let (pool, base) = create(mode);
        pool.arm_faults(FaultPlan::count_only());
        run_workload(&pool, base);
        counts.push((mode, pool.disarm_faults()));
    }
    let (_, reference) = counts[0];
    assert!(reference > 0, "workload must issue persist events");
    for (mode, n) in counts {
        assert_eq!(n, reference, "event count diverged for {mode:?}");
    }
}

/// For every trip point `k`, every mode trips at exactly event `k`, having
/// observed exactly `k + 1` events, and the post-trip `drop_all` media is
/// byte-identical across modes.
#[test]
fn trip_points_and_torn_media_are_shard_count_invariant() {
    let (pool, base) = create(PoolConcurrency::GlobalLock);
    pool.arm_faults(FaultPlan::count_only());
    run_workload(&pool, base);
    let events = pool.disarm_faults();
    assert!(events > 0);

    // Sweeping every k is quadratic in the workload size; stride through
    // the space while always covering the first and last events.
    let mut ks: Vec<u64> = (0..events).step_by(7).collect();
    if !ks.contains(&(events - 1)) {
        ks.push(events - 1);
    }
    for k in ks {
        // Torn trip-point stores exercise the seeded media prefix push —
        // the draw must be engine-independent too.
        let plan = FaultPlan::torn_crash_at(k, 0xD00D ^ k);
        let mut reference: Option<Vec<u8>> = None;
        for &mode in MODES {
            let (pool, base) = create(mode);
            pool.arm_faults(plan);
            run_workload(&pool, base);
            assert_eq!(
                pool.fault_tripped(),
                Some(k),
                "{mode:?}: event {k} must trip"
            );
            assert_eq!(
                pool.fault_events(),
                k + 1,
                "{mode:?}: events stop at the trip"
            );
            let media = pool
                .crash(&CrashConfig::drop_all(0xFEED ^ k))
                .unwrap()
                .media_snapshot();
            match &reference {
                None => reference = Some(media),
                Some(r) => assert_eq!(&media, r, "{mode:?}: durable media diverged at k={k}"),
            }
        }
    }
}
