//! Lock-step equivalence of the sharded pool engines against the retained
//! single-lock reference engine.
//!
//! PR 3's tentpole replaced the global pool mutex with address-range shards
//! (plus an opt-in lock-free `SingleThread` mode). The contract is that the
//! change is *unobservable* through the pool API: random schedules of
//! store/flush/fence/crash operations — including armed [`FaultPlan`]s that
//! kill the pool mid-schedule and torn trip-point stores — must produce
//! identical volatile reads, identical per-step error results, identical
//! persist-event numbering and fault-trip points, bit-identical stats
//! counters, and identical durable media after a seeded crash, at every
//! shard count and in `SingleThread` mode.
//!
//! PR 4 extends the schedules with the full allocator surface —
//! `alloc`/`free`/`reserve`/`publish`/`cancel` — so the sharded-arena
//! allocator is held to the same standard: identical addresses, identical
//! error results (`OutOfMemory`, `InvalidFree`, `InjectedCrash`), identical
//! `heap_used`, identical `check_heap` reports, and bit-identical durable
//! allocator metadata after a seeded crash, across every engine.

use clobber_pmem::{
    CrashConfig, FaultPlan, PAddr, PmemError, PmemPool, PoolConcurrency, PoolOptions,
};
use proptest::prelude::*;

const POOL_SIZE: u64 = 1 << 20;
const BLOCK: u64 = 16 << 10;

/// The candidate engines checked against the `GlobalLock` reference.
const CANDIDATES: &[PoolConcurrency] = &[
    PoolConcurrency::Sharded { shards: 2 },
    PoolConcurrency::Sharded { shards: 4 },
    PoolConcurrency::Sharded { shards: 16 },
    PoolConcurrency::SingleThread,
];

/// One step of the driver script. Offsets/lengths are pre-clipped to the
/// allocated block so pool metadata stays intact and a crashed pool can
/// always be reopened.
#[derive(Clone, Debug)]
enum Op {
    Write(u64, u64, u8),
    Flush(u64, u64),
    Fence,
    Crash(u64),
    /// Arm a plan tripping `delta` persist events from now (torn, seed).
    Arm(u64, bool, u64),
    Disarm,
    /// Immediate allocation of `size` bytes.
    Alloc(u64),
    /// Free the `i % len`-th tracked allocation (no-op when none exist).
    Free(usize),
    /// Zero-fence transactional reservation of `size` bytes.
    Reserve(u64),
    /// Publish the newest `k` outstanding reservations (clamped).
    Publish(usize),
    /// Cancel the newest `k` outstanding reservations (clamped).
    Cancel(usize),
}

/// Allocation sizes that exercise every interesting classifier bucket:
/// sub-minimum, small classes, the largest small class, and huge blocks.
fn size_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => 1u64..300,
        1 => 3000u64..4097,
        1 => 4097u64..20_000,
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..BLOCK, 1u64..256, 0u8..=255).prop_map(|(o, l, b)| Op::Write(o, l, b)),
        2 => (0u64..BLOCK, 1u64..512).prop_map(|(o, l)| Op::Flush(o, l)),
        2 => (0u64..4u64).prop_map(|_| Op::Fence),
        1 => (0u64..u64::MAX).prop_map(Op::Crash),
        1 => (0u64..12, 0u64..2, 0u64..u64::MAX)
            .prop_map(|(e, t, s)| Op::Arm(e, t == 1, s)),
        1 => (0u64..2u64).prop_map(|_| Op::Disarm),
        3 => size_strategy().prop_map(Op::Alloc),
        2 => (0usize..64).prop_map(Op::Free),
        3 => size_strategy().prop_map(Op::Reserve),
        2 => (0usize..4).prop_map(Op::Publish),
        2 => (0usize..4).prop_map(Op::Cancel),
    ]
}

/// The observable outcome of one op: `Ok` carries the returned address for
/// allocator ops (0 when the op returns no address), so address equality
/// across engines is part of the per-step comparison.
type Outcome = Result<u64, PmemError>;

/// Script-level allocator bookkeeping, driven by the *reference* engine's
/// results and shared by every candidate. Tracking may go stale after a
/// crash (rolled-back reservations, dropped publishes) — that is deliberate:
/// stale addresses exercise the `InvalidFree` paths, and every engine must
/// produce the same error for the same stale address.
#[derive(Default)]
struct Tracked {
    allocated: Vec<u64>,
    reserved: Vec<u64>,
}

impl Tracked {
    /// The argument block for a `Publish`/`Cancel` of the newest `k`.
    fn newest(&self, k: usize) -> Vec<PAddr> {
        let k = k.min(self.reserved.len());
        self.reserved[self.reserved.len() - k..]
            .iter()
            .map(|&o| PAddr::new(o))
            .collect()
    }
}

/// Applies one op, returning the (possibly reopened) pool and the op's
/// observable result. Every branch of this function must be a pure function
/// of the pool API — no peeking at engine internals — so a divergence here
/// is a real contract violation.
fn apply(pool: PmemPool, base: PAddr, tracked: &Tracked, op: &Op) -> (PmemPool, Outcome) {
    match *op {
        Op::Write(off, len, fill) => {
            let len = len.min(BLOCK - off);
            let data = vec![fill; len as usize];
            let r = pool.write_bytes(base.add(off), &data).map(|_| 0);
            (pool, r)
        }
        Op::Flush(off, len) => {
            let len = len.min(BLOCK - off);
            let r = pool.flush(base.add(off), len).map(|_| 0);
            (pool, r)
        }
        Op::Fence => {
            // Fences on a dead pool are silently lost; on a live pool they
            // succeed. Either way there is nothing to compare beyond the
            // event counter, checked by the caller.
            pool.fence();
            (pool, Ok(0))
        }
        Op::Crash(seed) => {
            let reopened = pool.crash(&CrashConfig::with_seed(seed)).unwrap();
            (reopened, Ok(0))
        }
        Op::Arm(delta, torn, seed) => {
            let plan = if torn {
                FaultPlan::torn_crash_at(delta, seed)
            } else {
                FaultPlan::crash_at(delta)
            };
            pool.arm_faults(plan);
            (pool, Ok(0))
        }
        Op::Disarm => {
            pool.disarm_faults();
            (pool, Ok(0))
        }
        Op::Alloc(size) => {
            let r = pool.alloc(size).map(|a| a.offset());
            (pool, r)
        }
        Op::Free(i) => {
            if tracked.allocated.is_empty() {
                return (pool, Ok(0));
            }
            let addr = tracked.allocated[i % tracked.allocated.len()];
            let r = pool.free(PAddr::new(addr)).map(|_| addr);
            (pool, r)
        }
        Op::Reserve(size) => {
            let r = pool.reserve(size).map(|a| a.offset());
            (pool, r)
        }
        Op::Publish(k) => {
            let blocks = tracked.newest(k);
            let r = pool.publish(&blocks).map(|_| 0);
            (pool, r)
        }
        Op::Cancel(k) => {
            let blocks = tracked.newest(k);
            let r = pool.cancel(&blocks).map(|_| 0);
            (pool, r)
        }
    }
}

/// Folds the reference outcome of an op back into the script's tracking, so
/// later `Free`/`Publish`/`Cancel` ops target real addresses.
fn track(tracked: &mut Tracked, op: &Op, outcome: &Outcome) {
    match (op, outcome) {
        (Op::Crash(_), _) => {
            // Unpublished reservations rolled back with the volatile mirror.
            // `allocated` is kept as-is: entries whose publish never became
            // durable are now stale and exercise `InvalidFree` on free.
            tracked.reserved.clear();
        }
        (Op::Alloc(_), Ok(addr)) => tracked.allocated.push(*addr),
        (Op::Free(_), Ok(addr)) => tracked.allocated.retain(|a| a != addr),
        (Op::Reserve(_), Ok(addr)) => tracked.reserved.push(*addr),
        (Op::Publish(k), Ok(_)) => {
            let k = (*k).min(tracked.reserved.len());
            let from = tracked.reserved.len() - k;
            let moved: Vec<u64> = tracked.reserved.drain(from..).collect();
            tracked.allocated.extend(moved);
        }
        (Op::Cancel(k), Ok(_)) => {
            let k = (*k).min(tracked.reserved.len());
            let from = tracked.reserved.len() - k;
            tracked.reserved.drain(from..);
        }
        _ => {}
    }
}

fn create(concurrency: PoolConcurrency) -> (PmemPool, PAddr) {
    let pool =
        PmemPool::create(PoolOptions::crash_sim(POOL_SIZE).with_concurrency(concurrency)).unwrap();
    let base = pool.alloc(BLOCK).unwrap();
    (pool, base)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The headline lock-step test: one schedule, five engines, every
    /// observable compared after every step.
    #[test]
    fn sharded_engines_match_global_lock_reference(
        (ops, final_seed) in (proptest::collection::vec(op_strategy(), 1..60), 0u64..u64::MAX)
    ) {
        let (mut reference, base_r) = create(PoolConcurrency::GlobalLock);
        let mut candidates: Vec<(PoolConcurrency, Option<PmemPool>, PAddr)> = Vec::new();
        for &c in CANDIDATES {
            let (p, b) = create(c);
            prop_assert_eq!(b, base_r, "deterministic allocator diverged for {:?}", c);
            candidates.push((c, Some(p), b));
        }
        let mut tracked = Tracked::default();

        for op in &ops {
            let (r, res_r) = apply(reference, base_r, &tracked, op);
            reference = r;
            let vol_r = reference.read_bytes(base_r, BLOCK);
            let ev_r = reference.fault_events();
            let trip_r = reference.fault_tripped();
            let used_r = reference.heap_used();

            for (c, slot, base) in &mut candidates {
                let (p, res_c) = apply(slot.take().unwrap(), *base, &tracked, op);
                let pool = slot.insert(p);
                prop_assert_eq!(
                    &res_c, &res_r,
                    "op result diverged for {:?} after {:?}", c, op
                );
                // Persist-event numbering and trip points are the ordering
                // contract: the global fault mutex must observe the same
                // total order regardless of how the address space is split.
                prop_assert_eq!(pool.fault_events(), ev_r, "event count diverged for {:?}", c);
                prop_assert_eq!(pool.fault_tripped(), trip_r, "trip point diverged for {:?}", c);
                // The allocator frontier is part of the deterministic state.
                prop_assert_eq!(pool.heap_used(), used_r, "heap_used diverged for {:?}", c);
                // Volatile view (media + cache overlay, or InjectedCrash on
                // a dead pool) must agree after every step.
                let vol_c = pool.read_bytes(*base, BLOCK);
                prop_assert_eq!(&vol_c, &vol_r, "volatile reads diverged for {:?} after {:?}", c, op);
            }
            track(&mut tracked, op, &res_r);
        }

        // Counters are part of the contract. The sharded engines route hot
        // counts through per-shard banks; `snapshot()` must fold them back
        // into totals bit-identical to the single-lock engine's.
        let snap_r = reference.stats().snapshot();
        for (c, slot, _) in &candidates {
            let pool = slot.as_ref().unwrap();
            prop_assert_eq!(pool.stats().snapshot(), snap_r.clone(), "counters diverged for {:?}", c);
        }

        // The same crash seed must draw the same per-line survival decisions
        // in every engine (ascending-shard × ascending-line = global
        // ascending line order) and therefore produce identical durable
        // media — even when the schedule left the pool dead (tripped).
        let crashed_r = reference.crash(&CrashConfig::with_seed(final_seed)).unwrap();
        let durable_r = crashed_r.read_bytes(base_r, BLOCK).unwrap();
        // The recovered heap structure is part of the durable contract.
        let heap_r = crashed_r.check_heap();
        for (c, slot, base) in candidates {
            let crashed = slot.unwrap().crash(&CrashConfig::with_seed(final_seed)).unwrap();
            prop_assert_eq!(
                crashed.concurrency(), c,
                "crash() must preserve the concurrency mode"
            );
            let durable = crashed.read_bytes(base, BLOCK).unwrap();
            prop_assert_eq!(&durable, &durable_r, "durable media diverged for {:?}", c);
            prop_assert_eq!(
                crashed.check_heap().is_ok(), heap_r.is_ok(),
                "check_heap verdict diverged for {:?}", c
            );
            if let (Ok(hc), Ok(hr)) = (crashed.check_heap(), heap_r.clone()) {
                prop_assert_eq!(hc, hr, "heap report diverged for {:?}", c);
            }
        }
    }
}
