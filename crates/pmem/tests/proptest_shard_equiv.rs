//! Lock-step equivalence of the sharded pool engines against the retained
//! single-lock reference engine.
//!
//! PR 3's tentpole replaced the global pool mutex with address-range shards
//! (plus an opt-in lock-free `SingleThread` mode). The contract is that the
//! change is *unobservable* through the pool API: random schedules of
//! store/flush/fence/crash operations — including armed [`FaultPlan`]s that
//! kill the pool mid-schedule and torn trip-point stores — must produce
//! identical volatile reads, identical per-step error results, identical
//! persist-event numbering and fault-trip points, bit-identical stats
//! counters, and identical durable media after a seeded crash, at every
//! shard count and in `SingleThread` mode.

use clobber_pmem::{
    CrashConfig, FaultPlan, PAddr, PmemError, PmemPool, PoolConcurrency, PoolOptions,
};
use proptest::prelude::*;

const POOL_SIZE: u64 = 1 << 20;
const BLOCK: u64 = 16 << 10;

/// The candidate engines checked against the `GlobalLock` reference.
const CANDIDATES: &[PoolConcurrency] = &[
    PoolConcurrency::Sharded { shards: 2 },
    PoolConcurrency::Sharded { shards: 4 },
    PoolConcurrency::Sharded { shards: 16 },
    PoolConcurrency::SingleThread,
];

/// One step of the driver script. Offsets/lengths are pre-clipped to the
/// allocated block so pool metadata stays intact and a crashed pool can
/// always be reopened.
#[derive(Clone, Debug)]
enum Op {
    Write(u64, u64, u8),
    Flush(u64, u64),
    Fence,
    Crash(u64),
    /// Arm a plan tripping `delta` persist events from now (torn, seed).
    Arm(u64, bool, u64),
    Disarm,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..BLOCK, 1u64..256, 0u8..=255).prop_map(|(o, l, b)| Op::Write(o, l, b)),
        2 => (0u64..BLOCK, 1u64..512).prop_map(|(o, l)| Op::Flush(o, l)),
        2 => (0u64..4u64).prop_map(|_| Op::Fence),
        1 => (0u64..u64::MAX).prop_map(Op::Crash),
        1 => (0u64..12, 0u64..2, 0u64..u64::MAX)
            .prop_map(|(e, t, s)| Op::Arm(e, t == 1, s)),
        1 => (0u64..2u64).prop_map(|_| Op::Disarm),
    ]
}

/// Applies one op, returning the (possibly reopened) pool and the op's
/// observable result. Every branch of this function must be a pure function
/// of the pool API — no peeking at engine internals — so a divergence here
/// is a real contract violation.
fn apply(pool: PmemPool, base: PAddr, op: &Op) -> (PmemPool, Result<(), PmemError>) {
    match *op {
        Op::Write(off, len, fill) => {
            let len = len.min(BLOCK - off);
            let data = vec![fill; len as usize];
            let r = pool.write_bytes(base.add(off), &data);
            (pool, r)
        }
        Op::Flush(off, len) => {
            let len = len.min(BLOCK - off);
            let r = pool.flush(base.add(off), len);
            (pool, r)
        }
        Op::Fence => {
            // Fences on a dead pool are silently lost; on a live pool they
            // succeed. Either way there is nothing to compare beyond the
            // event counter, checked by the caller.
            pool.fence();
            (pool, Ok(()))
        }
        Op::Crash(seed) => {
            let reopened = pool.crash(&CrashConfig::with_seed(seed)).unwrap();
            (reopened, Ok(()))
        }
        Op::Arm(delta, torn, seed) => {
            let plan = if torn {
                FaultPlan::torn_crash_at(delta, seed)
            } else {
                FaultPlan::crash_at(delta)
            };
            pool.arm_faults(plan);
            (pool, Ok(()))
        }
        Op::Disarm => {
            pool.disarm_faults();
            (pool, Ok(()))
        }
    }
}

fn create(concurrency: PoolConcurrency) -> (PmemPool, PAddr) {
    let pool =
        PmemPool::create(PoolOptions::crash_sim(POOL_SIZE).with_concurrency(concurrency)).unwrap();
    let base = pool.alloc(BLOCK).unwrap();
    (pool, base)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The headline lock-step test: one schedule, five engines, every
    /// observable compared after every step.
    #[test]
    fn sharded_engines_match_global_lock_reference(
        (ops, final_seed) in (proptest::collection::vec(op_strategy(), 1..60), 0u64..u64::MAX)
    ) {
        let (mut reference, base_r) = create(PoolConcurrency::GlobalLock);
        let mut candidates: Vec<(PoolConcurrency, Option<PmemPool>, PAddr)> = Vec::new();
        for &c in CANDIDATES {
            let (p, b) = create(c);
            prop_assert_eq!(b, base_r, "deterministic allocator diverged for {:?}", c);
            candidates.push((c, Some(p), b));
        }

        for op in &ops {
            let (r, res_r) = apply(reference, base_r, op);
            reference = r;
            let vol_r = reference.read_bytes(base_r, BLOCK);
            let ev_r = reference.fault_events();
            let trip_r = reference.fault_tripped();

            for (c, slot, base) in &mut candidates {
                let (p, res_c) = apply(slot.take().unwrap(), *base, op);
                let pool = slot.insert(p);
                prop_assert_eq!(
                    &res_c, &res_r,
                    "op result diverged for {:?} after {:?}", c, op
                );
                // Persist-event numbering and trip points are the ordering
                // contract: the global fault mutex must observe the same
                // total order regardless of how the address space is split.
                prop_assert_eq!(pool.fault_events(), ev_r, "event count diverged for {:?}", c);
                prop_assert_eq!(pool.fault_tripped(), trip_r, "trip point diverged for {:?}", c);
                // Volatile view (media + cache overlay, or InjectedCrash on
                // a dead pool) must agree after every step.
                let vol_c = pool.read_bytes(*base, BLOCK);
                prop_assert_eq!(&vol_c, &vol_r, "volatile reads diverged for {:?} after {:?}", c, op);
            }
        }

        // Counters are part of the contract. The sharded engines route hot
        // counts through per-shard banks; `snapshot()` must fold them back
        // into totals bit-identical to the single-lock engine's.
        let snap_r = reference.stats().snapshot();
        for (c, slot, _) in &candidates {
            let pool = slot.as_ref().unwrap();
            prop_assert_eq!(pool.stats().snapshot(), snap_r.clone(), "counters diverged for {:?}", c);
        }

        // The same crash seed must draw the same per-line survival decisions
        // in every engine (ascending-shard × ascending-line = global
        // ascending line order) and therefore produce identical durable
        // media — even when the schedule left the pool dead (tripped).
        let crashed_r = reference.crash(&CrashConfig::with_seed(final_seed)).unwrap();
        let durable_r = crashed_r.read_bytes(base_r, BLOCK).unwrap();
        for (c, slot, base) in candidates {
            let crashed = slot.unwrap().crash(&CrashConfig::with_seed(final_seed)).unwrap();
            prop_assert_eq!(
                crashed.concurrency(), c,
                "crash() must preserve the concurrency mode"
            );
            let durable = crashed.read_bytes(base, BLOCK).unwrap();
            prop_assert_eq!(&durable, &durable_r, "durable media diverged for {:?}", c);
        }
    }
}
