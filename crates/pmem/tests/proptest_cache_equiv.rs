//! Equivalence of the dense line cache against the reference (map-based)
//! model at full-pool granularity.
//!
//! The dense model replaced the original `HashMap<u64, CacheLine>` cache on
//! the hot path; the reference implementation preserves the old semantics
//! verbatim. Random store/flush/fence/crash sequences driven through both
//! pools must produce identical volatile reads, identical durable media
//! after a seeded crash, and bit-identical stats counters — the
//! counter-preservation contract the benchmarks rely on.

use clobber_pmem::{CrashConfig, PAddr, PmemPool, PoolOptions};
use proptest::prelude::*;

const POOL_SIZE: u64 = 1 << 20;
const BLOCK: u64 = 16 << 10;

/// One step of the driver script. Offsets/lengths are pre-clipped to the
/// allocated block so pool metadata stays intact and a crashed pool can
/// always be reopened.
#[derive(Clone, Debug)]
enum Op {
    Write(u64, u64, u8),
    Flush(u64, u64),
    Fence,
    Crash(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..BLOCK, 1u64..256, 0u8..=255).prop_map(|(o, l, b)| Op::Write(o, l, b)),
        2 => (0u64..BLOCK, 1u64..512).prop_map(|(o, l)| Op::Flush(o, l)),
        2 => (0u64..4u64).prop_map(|_| Op::Fence),
        1 => (0u64..u64::MAX).prop_map(Op::Crash),
    ]
}

fn apply(pool: PmemPool, base: PAddr, op: &Op) -> PmemPool {
    match *op {
        Op::Write(off, len, fill) => {
            let len = len.min(BLOCK - off);
            let data = vec![fill; len as usize];
            pool.write_bytes(base.add(off), &data).unwrap();
            pool
        }
        Op::Flush(off, len) => {
            let len = len.min(BLOCK - off);
            pool.flush(base.add(off), len).unwrap();
            pool
        }
        Op::Fence => {
            pool.fence();
            pool
        }
        Op::Crash(seed) => pool.crash(&CrashConfig::with_seed(seed)).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn dense_and_reference_caches_are_indistinguishable(
        (ops, final_seed) in (proptest::collection::vec(op_strategy(), 1..60), 0u64..u64::MAX)
    ) {
        let mut dense = PmemPool::create(PoolOptions::crash_sim(POOL_SIZE)).unwrap();
        let mut reference =
            PmemPool::create(PoolOptions::crash_sim(POOL_SIZE).with_reference_cache()).unwrap();
        let base_d = dense.alloc(BLOCK).unwrap();
        let base_r = reference.alloc(BLOCK).unwrap();
        prop_assert_eq!(base_d, base_r, "deterministic allocator diverged");

        for op in &ops {
            dense = apply(dense, base_d, op);
            reference = apply(reference, base_r, op);
            // Volatile view (media + cache overlay) must agree after every
            // step, including across mid-sequence crashes.
            let vd = dense.read_bytes(base_d, BLOCK).unwrap();
            let vr = reference.read_bytes(base_r, BLOCK).unwrap();
            prop_assert_eq!(vd, vr, "volatile reads diverged after {:?}", op);
        }

        // Stats counters are part of the contract: every flush/fence/write
        // accounting decision must be identical. (Reads were issued in
        // lock-step above, so read counters match too.)
        prop_assert_eq!(dense.stats().snapshot(), reference.stats().snapshot());

        // The same crash seed must draw the same per-line survival
        // decisions and therefore produce identical durable media.
        let cd = dense.crash(&CrashConfig::with_seed(final_seed)).unwrap();
        let cr = reference.crash(&CrashConfig::with_seed(final_seed)).unwrap();
        let dd = cd.read_bytes(base_d, BLOCK).unwrap();
        let dr = cr.read_bytes(base_r, BLOCK).unwrap();
        prop_assert_eq!(dd, dr, "durable media diverged after crash");
    }
}
