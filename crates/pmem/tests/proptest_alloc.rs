//! Property-based tests of the persistent allocator and the crash model.

use clobber_pmem::{CrashConfig, PmemPool, PoolMode, PoolOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum AllocOp {
    /// Allocate a block of the given size.
    Alloc(u64),
    /// Free the i-th live block (modulo the live count).
    Free(usize),
}

fn ops_strategy() -> impl Strategy<Value = Vec<AllocOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1u64..600).prop_map(AllocOp::Alloc),
            2 => (0usize..64).prop_map(AllocOp::Free),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Live blocks never overlap, data written to them round-trips, and
    /// every free is accepted exactly once.
    #[test]
    fn allocations_are_disjoint_and_stable(ops in ops_strategy()) {
        let pool = PmemPool::create(PoolOptions::performance(4 << 20)).unwrap();
        let mut live: Vec<(clobber_pmem::PAddr, u64, u8)> = Vec::new();
        let mut stamp = 1u8;
        for op in ops {
            match op {
                AllocOp::Alloc(size) => {
                    let a = pool.alloc(size).unwrap();
                    // Disjointness against every live block.
                    for (b, bsize, _) in &live {
                        let (s1, e1) = (a.offset(), a.offset() + size);
                        let (s2, e2) = (b.offset(), b.offset() + bsize);
                        prop_assert!(e1 <= s2 || e2 <= s1, "overlap {a:?} and {b:?}");
                    }
                    pool.write_bytes(a, &vec![stamp; size as usize]).unwrap();
                    live.push((a, size, stamp));
                    stamp = stamp.wrapping_add(1).max(1);
                }
                AllocOp::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (a, _, _) = live.remove(i % live.len());
                    pool.free(a).unwrap();
                }
            }
            // All live payloads intact after every step.
            for (a, size, s) in &live {
                let data = pool.read_bytes(*a, *size).unwrap();
                prop_assert!(data.iter().all(|b| b == s), "payload of {a:?} torn");
            }
        }
    }

    /// Persisted data survives adversarial crashes regardless of allocator
    /// traffic, and the reopened allocator still works.
    #[test]
    fn persisted_blocks_survive_crash(sizes in proptest::collection::vec(1u64..300, 1..20), seed in 0u64..1000) {
        let pool = PmemPool::create(PoolOptions::crash_sim(4 << 20)).unwrap();
        let mut blocks = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let a = pool.alloc(*size).unwrap();
            pool.write_bytes(a, &vec![i as u8 ^ 0x55; *size as usize]).unwrap();
            pool.persist(a, *size).unwrap();
            blocks.push((a, *size, i as u8 ^ 0x55));
        }
        let crashed = pool.crash(&CrashConfig::drop_all(seed)).unwrap();
        let pool2 = PmemPool::open_from_media(crashed.media_snapshot(), PoolMode::CrashSim).unwrap();
        for (a, size, stamp) in &blocks {
            let data = pool2.read_bytes(*a, *size).unwrap();
            prop_assert!(data.iter().all(|b| b == stamp));
        }
        // The recovered allocator does not hand out any persisted block.
        let fresh = pool2.alloc(128).unwrap();
        for (a, size, _) in &blocks {
            let (s1, e1) = (fresh.offset(), fresh.offset() + 128);
            let (s2, e2) = (a.offset(), a.offset() + size);
            prop_assert!(e1 <= s2 || e2 <= s1);
        }
    }

    /// Reserve/cancel leaves the allocator exactly where it started.
    #[test]
    fn reserve_cancel_is_idempotent(sizes in proptest::collection::vec(1u64..300, 1..16)) {
        let pool = PmemPool::create(PoolOptions::performance(4 << 20)).unwrap();
        let used_before = pool.heap_used();
        let reserved: Vec<_> = sizes.iter().map(|s| pool.reserve(*s).unwrap()).collect();
        // Cancel in reverse order (LIFO), as a cleanly aborting transaction
        // would.
        for b in reserved.iter().rev() {
            pool.cancel(&[*b]).unwrap();
        }
        prop_assert_eq!(pool.heap_used(), used_before);
    }

    /// The crash model is monotone: anything durable under `drop_all`
    /// is also durable under any milder policy with the same seed.
    #[test]
    fn crash_policies_are_monotone(seed in 0u64..500) {
        let make = || {
            let pool = PmemPool::create(PoolOptions::crash_sim(1 << 20)).unwrap();
            for i in 0..32u64 {
                pool.write_u64(clobber_pmem::PAddr::new(4096 + i * 64), i + 1).unwrap();
                if i % 3 == 0 {
                    pool.persist(clobber_pmem::PAddr::new(4096 + i * 64), 8).unwrap();
                }
            }
            pool
        };
        let hard = make().crash(&CrashConfig::drop_all(seed)).unwrap();
        let soft = make().crash(&CrashConfig::keep_all(seed)).unwrap();
        for i in 0..32u64 {
            let addr = clobber_pmem::PAddr::new(4096 + i * 64);
            let h = hard.read_u64(addr).unwrap();
            let s = soft.read_u64(addr).unwrap();
            if h != 0 {
                prop_assert_eq!(h, s, "durable data must agree across policies");
            }
        }
    }
}
