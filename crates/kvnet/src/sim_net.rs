//! The deterministic simulated transport: closed-loop clients on a
//! discrete-event clock.
//!
//! Clients, connections, and request arrival are simulated events in the
//! spirit of `clobber-sim`'s discrete-event executor: every decision is a
//! pure function of the configuration, so a service run — including a
//! crash injected mid-batch — is bit-deterministic across pool engines and
//! replayable through the trace/explorer stack. Service time comes from the
//! serve loop's cost model (the per-batch persistence-counter delta priced
//! in nanoseconds), which is what makes this the tail-latency oracle on a
//! 1-CPU host: the simulated clock measures fences and log traffic, not
//! wall time.

use std::collections::{HashMap, VecDeque};

use clobber_workloads::{Mix, RequestStream};

use crate::proto::{KvRequest, KvResponse};
use crate::transport::{ConnId, Envelope, NetEvent, Transport};

/// Simulated client population.
#[derive(Debug, Clone, Copy)]
pub struct SimNetConfig {
    /// Concurrent closed-loop clients (one connection each).
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: u64,
    /// Key-space size shared by all clients.
    pub key_space: u64,
    /// Base RNG seed; client `c` streams with `seed + c`.
    pub seed: u64,
    /// set/get mix.
    pub mix: Mix,
    /// `Some(theta)` for zipf-skewed keys, `None` for uniform.
    pub zipf_theta: Option<f64>,
    /// Most requests one client keeps in flight (its pipeline depth).
    pub window: usize,
    /// Client think time between a response and the next request.
    pub think_ns: u64,
    /// Backoff before resubmitting a shed request.
    pub shed_backoff_ns: u64,
}

impl SimNetConfig {
    /// A sensible default population of `clients` clients.
    pub fn new(clients: usize) -> SimNetConfig {
        SimNetConfig {
            clients,
            requests_per_client: 64,
            key_space: 1024,
            seed: 42,
            mix: Mix::InsertMost,
            zipf_theta: Some(0.99),
            window: 1,
            think_ns: 500,
            shed_backoff_ns: 20_000,
        }
    }
}

#[derive(Debug)]
struct Client {
    stream: RequestStream,
    remaining: u64,
    /// Earliest simulated instant this client issues its next request.
    ready_at: u64,
    /// Shed requests waiting to be resubmitted: (request, original
    /// arrival, earliest resubmit instant).
    retries: VecDeque<(KvRequest, u64, u64)>,
    outstanding: usize,
}

/// What one simulated run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Requests answered (shed resubmissions count once, at completion).
    pub completed: u64,
    /// `Overloaded` responses observed (each is later resubmitted).
    pub shed: u64,
    /// Simulated end-to-end time.
    pub elapsed_ns: u64,
    /// Median request latency.
    pub p50_ns: u64,
    /// 99th-percentile request latency.
    pub p99_ns: u64,
    /// 99.9th-percentile request latency.
    pub p999_ns: u64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
}

/// The deterministic simulated transport.
#[derive(Debug)]
pub struct SimNet {
    clients: Vec<Client>,
    now_ns: u64,
    next_opaque: u64,
    think_ns: u64,
    shed_backoff_ns: u64,
    /// In-flight bookkeeping: opaque → (conn, request, original arrival).
    inflight: HashMap<u64, (ConnId, KvRequest, u64)>,
    latencies: Vec<u64>,
    shed: u64,
}

impl SimNet {
    /// Builds the client population.
    pub fn new(cfg: &SimNetConfig) -> SimNet {
        let clients = (0..cfg.clients)
            .map(|c| {
                let seed = cfg.seed + c as u64;
                let stream = match cfg.zipf_theta {
                    Some(theta) => RequestStream::zipf(
                        cfg.mix,
                        cfg.requests_per_client,
                        cfg.key_space,
                        seed,
                        theta,
                    ),
                    None => {
                        RequestStream::new(cfg.mix, cfg.requests_per_client, cfg.key_space, seed)
                    }
                };
                Client {
                    stream,
                    remaining: cfg.requests_per_client,
                    // Stagger connection establishment so arrival order is
                    // well-defined from the first event.
                    ready_at: c as u64 * 100,
                    retries: VecDeque::new(),
                    outstanding: 0,
                }
            })
            .collect();
        SimNet {
            clients,
            now_ns: 0,
            next_opaque: 0,
            think_ns: cfg.think_ns,
            shed_backoff_ns: cfg.shed_backoff_ns,
            inflight: HashMap::new(),
            latencies: Vec::new(),
            shed: 0,
        }
    }

    /// The earliest instant client `c` could issue, or `None` if it has
    /// nothing left (or its pipeline is full).
    fn next_issue_at(&self, c: usize, window: usize) -> Option<u64> {
        let cl = &self.clients[c];
        if cl.outstanding >= window {
            return None;
        }
        let retry = cl.retries.front().map(|&(_, _, ready)| ready);
        let fresh = (cl.remaining > 0).then_some(cl.ready_at);
        match (retry, fresh) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Issues one request from client `c` (a due retry wins over fresh
    /// traffic so shed work is not starved).
    fn issue(&mut self, c: usize) -> NetEvent {
        let now = self.now_ns;
        let cl = &mut self.clients[c];
        let (req, arrival) = match cl.retries.front() {
            Some(&(_, _, ready)) if ready <= now => {
                let (req, arrival, _) = cl.retries.pop_front().expect("front exists");
                (req, arrival)
            }
            _ => {
                let req: KvRequest = cl.stream.next().expect("remaining > 0").into();
                cl.remaining -= 1;
                let arrival = cl.ready_at;
                cl.ready_at = now + 1; // pipeline spacing within the window
                (req, arrival)
            }
        };
        cl.outstanding += 1;
        let opaque = self.next_opaque;
        self.next_opaque += 1;
        self.inflight.insert(opaque, (c, req.clone(), arrival));
        NetEvent::Request(Envelope {
            conn: c,
            opaque,
            req,
        })
    }

    /// Sorted-latency percentile (nearest-rank).
    fn percentile(sorted: &[u64], q: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Finishes the run and summarizes what it measured.
    pub fn report(mut self) -> SimReport {
        self.latencies.sort_unstable();
        let completed = self.latencies.len() as u64;
        let elapsed = self.now_ns.max(1);
        SimReport {
            completed,
            shed: self.shed,
            elapsed_ns: self.now_ns,
            p50_ns: Self::percentile(&self.latencies, 0.50),
            p99_ns: Self::percentile(&self.latencies, 0.99),
            p999_ns: Self::percentile(&self.latencies, 0.999),
            throughput_rps: completed as f64 * 1e9 / elapsed as f64,
        }
    }

    /// The simulated clock.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }
}

/// The per-run window is fixed at build time; [`SimNet::with_window`]
/// carries it through the `Transport` calls.
#[derive(Debug)]
pub struct SimNetRun {
    net: SimNet,
    window: usize,
}

impl SimNet {
    /// Binds the per-client pipeline depth for a run.
    pub fn with_window(self, window: usize) -> SimNetRun {
        SimNetRun {
            net: self,
            window: window.max(1),
        }
    }
}

impl SimNetRun {
    /// Finishes the run and summarizes what it measured.
    pub fn report(self) -> SimReport {
        self.net.report()
    }

    /// The simulated clock.
    pub fn now_ns(&self) -> u64 {
        self.net.now_ns()
    }
}

impl Transport for SimNetRun {
    fn recv(&mut self, max: usize) -> Option<Vec<NetEvent>> {
        let n = self.net.clients.len();
        loop {
            // Issue everything due now, round-robin by client index until
            // quiescent or the burst is full — a deterministic schedule.
            let mut events = Vec::new();
            loop {
                let mut issued_any = false;
                for c in 0..n {
                    if events.len() >= max {
                        break;
                    }
                    if let Some(t) = self.net.next_issue_at(c, self.window) {
                        if t <= self.net.now_ns {
                            events.push(self.net.issue(c));
                            issued_any = true;
                        }
                    }
                }
                if !issued_any || events.len() >= max {
                    break;
                }
            }
            if !events.is_empty() {
                return Some(events);
            }
            // Nothing due: advance the clock to the earliest future issue.
            match (0..n)
                .filter_map(|c| self.net.next_issue_at(c, self.window))
                .min()
            {
                Some(t) => self.net.now_ns = self.net.now_ns.max(t),
                None => return None,
            }
        }
    }

    fn send(&mut self, responses: Vec<(ConnId, u64, KvResponse)>, cost_ns: u64) {
        self.net.now_ns += cost_ns;
        let now = self.net.now_ns;
        for (conn, opaque, resp) in responses {
            let (c, req, arrival) = self
                .net
                .inflight
                .remove(&opaque)
                .expect("response to an unknown opaque");
            debug_assert_eq!(c, conn);
            let cl = &mut self.net.clients[conn];
            cl.outstanding -= 1;
            match resp {
                KvResponse::Overloaded | KvResponse::Retry { .. } => {
                    // Resubmit later; latency keeps accruing from the
                    // ORIGINAL arrival, so shedding shows up in the tail.
                    self.net.shed += 1;
                    cl.retries
                        .push_back((req, arrival, now + self.net.shed_backoff_ns));
                }
                _ => {
                    self.net.latencies.push(now.saturating_sub(arrival));
                    cl.ready_at = now + self.net.think_ns;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy in-test service: answers every request instantly at a fixed
    /// cost, no admission — exercises the clock and latency accounting.
    fn drain(run: &mut SimNetRun, cost_ns: u64) -> u64 {
        let mut served = 0;
        while let Some(events) = run.recv(16) {
            let responses: Vec<_> = events
                .into_iter()
                .filter_map(|e| match e {
                    NetEvent::Request(env) => {
                        served += 1;
                        Some((env.conn, env.opaque, KvResponse::Stored))
                    }
                    NetEvent::Closed { .. } => None,
                })
                .collect();
            run.send(responses, cost_ns);
        }
        served
    }

    #[test]
    fn every_request_is_served_exactly_once() {
        let cfg = SimNetConfig {
            requests_per_client: 20,
            ..SimNetConfig::new(4)
        };
        let mut run = SimNet::new(&cfg).with_window(2);
        let served = drain(&mut run, 1_000);
        assert_eq!(served, 80);
        let report = run.report();
        assert_eq!(report.completed, 80);
        assert_eq!(report.shed, 0);
        assert!(report.p50_ns > 0);
        assert!(report.p999_ns >= report.p99_ns && report.p99_ns >= report.p50_ns);
    }

    #[test]
    fn runs_are_bit_deterministic() {
        let cfg = SimNetConfig {
            requests_per_client: 30,
            ..SimNetConfig::new(3)
        };
        let reports: Vec<SimReport> = (0..2)
            .map(|_| {
                let mut run = SimNet::new(&cfg).with_window(2);
                drain(&mut run, 777);
                run.report()
            })
            .collect();
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn higher_cost_means_higher_latency() {
        let cfg = SimNetConfig::new(4);
        let slow = {
            let mut run = SimNet::new(&cfg).with_window(1);
            drain(&mut run, 50_000);
            run.report()
        };
        let fast = {
            let mut run = SimNet::new(&cfg).with_window(1);
            drain(&mut run, 1_000);
            run.report()
        };
        assert!(slow.p50_ns > fast.p50_ns);
        assert!(slow.throughput_rps < fast.throughput_rps);
    }

    #[test]
    fn shed_responses_are_resubmitted_and_eventually_complete() {
        let cfg = SimNetConfig {
            requests_per_client: 10,
            ..SimNetConfig::new(2)
        };
        let mut run = SimNet::new(&cfg).with_window(1);
        // Shed every third request by hand.
        let mut seen = 0u64;
        let mut served = 0u64;
        while let Some(events) = run.recv(8) {
            let responses: Vec<_> = events
                .into_iter()
                .filter_map(|e| match e {
                    NetEvent::Request(env) => {
                        seen += 1;
                        if seen % 3 == 0 {
                            Some((env.conn, env.opaque, KvResponse::Overloaded))
                        } else {
                            served += 1;
                            Some((env.conn, env.opaque, KvResponse::Stored))
                        }
                    }
                    NetEvent::Closed { .. } => None,
                })
                .collect();
            run.send(responses, 500);
        }
        let report = run.report();
        assert_eq!(report.completed, 20, "every request completes in the end");
        assert_eq!(report.completed, served);
        assert!(report.shed > 0);
    }
}
