//! Networked KV service front-end for the Clobber-NVM key-value server.
//!
//! The paper's memcached port (§5.6) is a library loop; this crate gives it
//! a service layer: typed requests over a [`Transport`] trait, a batcher
//! that coalesces concurrent client writes into ONE group-committed locked
//! transaction (so the commit fence amortizes across *clients*, not just
//! threads), snapshot `GET`s served off the volatile cache without entering
//! a transaction, and admission control that sheds load with a typed
//! [`KvResponse::Overloaded`] instead of queueing unboundedly.
//!
//! Two transports implement the trait:
//!
//! - [`SimNet`]: a deterministic simulated transport in the spirit of the
//!   discrete-event executor in `clobber-sim`. Clients, request arrival,
//!   and service time are simulated events driven by the
//!   [`CostModel`](clobber_sim::CostModel) latency oracle, so whole service
//!   runs — including crashes injected mid-batch — are bit-deterministic
//!   across pool engines and replayable through the trace/explorer stack.
//! - [`TcpTransport`]: an optional real-socket mode over
//!   `std::net::TcpListener` with a length-prefixed binary framing codec
//!   (std only — no new dependencies).

#![warn(missing_docs)]

mod admission;
mod proto;
mod service;
mod sim_net;
mod tcp;
mod transport;

pub use admission::{Admission, AdmissionConfig};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    KvRequest, KvResponse, MAX_FRAME,
};
pub use service::{key_id, KvService};
pub use sim_net::{SimNet, SimNetConfig, SimNetRun, SimReport};
pub use tcp::{KvClient, TcpTransport};
pub use transport::{serve, ConnId, Envelope, NetEvent, ServeConfig, Transport};
