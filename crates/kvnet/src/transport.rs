//! The [`Transport`] trait and the transport-agnostic serve loop.

use std::sync::atomic::Ordering;

use clobber_nvm::TxError;
use clobber_sim::CostModel;

use crate::admission::Admission;
use crate::proto::{KvRequest, KvResponse};
use crate::service::KvService;

/// Connection identifier (dense, transport-assigned).
pub type ConnId = usize;

/// One request in flight: who sent it, the opaque token to echo back, and
/// the decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Originating connection.
    pub conn: ConnId,
    /// Client-chosen token echoed on the response.
    pub opaque: u64,
    /// The decoded request.
    pub req: KvRequest,
}

/// What a transport delivers to the serve loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent {
    /// A decoded request arrived.
    Request(Envelope),
    /// A connection went away; the serve loop drops its admission state.
    Closed {
        /// The closed connection.
        conn: ConnId,
    },
}

/// A byte-free transport abstraction: the serve loop never sees sockets or
/// simulated clocks, only events in and responses out.
///
/// `recv` blocks (in real or simulated time) until at least one event is
/// available, delivering at most `max`; `None` means every connection is
/// done and the service should stop. `send` delivers responses and charges
/// `cost_ns` of service time — the simulated transport advances its clock
/// by it, the socket transport ignores it (real time passed already).
pub trait Transport {
    /// Waits for the next burst of events (at most `max`).
    fn recv(&mut self, max: usize) -> Option<Vec<NetEvent>>;

    /// Delivers responses, charging `cost_ns` of service time.
    fn send(&mut self, responses: Vec<(ConnId, u64, KvResponse)>, cost_ns: u64);
}

/// Serve-loop tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Most requests coalesced into one batch (1 = per-request commit).
    pub max_batch: usize,
    /// Latency oracle used to price each batch on the simulated clock.
    pub cost: CostModel,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_batch: 16,
            cost: CostModel::optane(),
        }
    }
}

/// Runs the service until the transport reports all connections done.
///
/// Each iteration drains up to `max_batch` events, makes an admission
/// decision per request (shed requests get an immediate
/// [`KvResponse::Overloaded`] at zero service cost), executes the admitted
/// requests as one coalesced batch — writes inside ONE locked
/// group-committed transaction, reads off the volatile cache — and sends
/// the responses back priced by the cost model over the batch's real
/// persistence counter delta.
///
/// # Errors
///
/// Propagates [`TxError`] from the batch transaction — in particular an
/// injected crash mid-batch, which is how the crash sweep drives this loop.
pub fn serve<T: Transport>(
    svc: &mut KvService,
    adm: &mut Admission,
    transport: &mut T,
    cfg: &ServeConfig,
) -> Result<(), TxError> {
    let stats = svc.rt().pool().stats().clone();
    while let Some(events) = transport.recv(cfg.max_batch.max(1)) {
        let mut batch = Vec::new();
        let mut shed = Vec::new();
        for ev in events {
            match ev {
                NetEvent::Closed { conn } => adm.forget(conn),
                NetEvent::Request(env) => {
                    if adm.try_admit(env.conn) {
                        stats.net_accepted.fetch_add(1, Ordering::Relaxed);
                        batch.push(env);
                    } else {
                        stats.net_shed.fetch_add(1, Ordering::Relaxed);
                        shed.push((env.conn, env.opaque, KvResponse::Overloaded));
                    }
                }
            }
        }
        if !shed.is_empty() {
            transport.send(shed, 0);
        }
        if !batch.is_empty() {
            let before = stats.snapshot();
            let responses = svc.process_batch_on(0, &batch)?;
            let cost = cfg.cost.op_cost(&stats.snapshot().delta(&before));
            for env in &batch {
                adm.complete(env.conn);
            }
            transport.send(responses, cost);
        }
    }
    Ok(())
}
