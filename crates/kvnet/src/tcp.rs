//! Optional real-socket transport over `std::net::TcpListener` (std only).
//!
//! An acceptor thread takes `expected_conns` connections; each gets a
//! reader thread that decodes length-prefixed frames into [`NetEvent`]s on
//! a channel the serve loop drains. Responses are written back on the serve
//! thread directly — one writer per connection, so frames never interleave.
//! This mode trades the simulated clock's determinism for real sockets; the
//! deterministic transport ([`SimNet`](crate::SimNet)) remains the oracle.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::thread;

use crate::proto::{
    decode_response, encode_request, encode_response, read_frame, write_frame, KvRequest,
    KvResponse,
};
use crate::transport::{ConnId, Envelope, NetEvent, Transport};

enum TcpMsg {
    Opened(ConnId, TcpStream),
    Request(Envelope),
    Closed(ConnId),
}

/// The real-socket transport (server side).
pub struct TcpTransport {
    rx: mpsc::Receiver<TcpMsg>,
    writers: HashMap<ConnId, TcpStream>,
    expected: usize,
    closed: usize,
    local_addr: SocketAddr,
}

impl TcpTransport {
    /// Binds `addr` and accepts exactly `expected_conns` connections over
    /// the transport's lifetime; [`Transport::recv`] returns `None` once
    /// all of them have disconnected.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (the loopback smoke test skips
    /// gracefully on sandboxes without socket support).
    pub fn bind<A: ToSocketAddrs>(addr: A, expected_conns: usize) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel();
        thread::spawn(move || {
            for conn in 0..expected_conns {
                let Ok((stream, _)) = listener.accept() else {
                    let _ = tx.send(TcpMsg::Closed(conn));
                    continue;
                };
                let Ok(writer) = stream.try_clone() else {
                    let _ = tx.send(TcpMsg::Closed(conn));
                    continue;
                };
                if tx.send(TcpMsg::Opened(conn, writer)).is_err() {
                    return;
                }
                let tx = tx.clone();
                thread::spawn(move || {
                    let mut stream = stream;
                    loop {
                        match read_frame(&mut stream) {
                            Ok(Some(payload)) => {
                                let Some((opaque, req)) = crate::proto::decode_request(&payload)
                                else {
                                    break; // malformed frame: drop the conn
                                };
                                if tx
                                    .send(TcpMsg::Request(Envelope { conn, opaque, req }))
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            Ok(None) | Err(_) => break,
                        }
                    }
                    let _ = tx.send(TcpMsg::Closed(conn));
                });
            }
        });
        Ok(TcpTransport {
            rx,
            writers: HashMap::new(),
            expected: expected_conns,
            closed: 0,
            local_addr,
        })
    }

    /// The bound address (use with port 0 to discover the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn translate(&mut self, msg: TcpMsg) -> Option<NetEvent> {
        match msg {
            TcpMsg::Opened(conn, stream) => {
                self.writers.insert(conn, stream);
                None
            }
            TcpMsg::Request(env) => Some(NetEvent::Request(env)),
            TcpMsg::Closed(conn) => {
                self.closed += 1;
                self.writers.remove(&conn);
                Some(NetEvent::Closed { conn })
            }
        }
    }
}

impl Transport for TcpTransport {
    fn recv(&mut self, max: usize) -> Option<Vec<NetEvent>> {
        let mut out = Vec::new();
        while out.len() < max {
            if out.is_empty() {
                if self.closed >= self.expected {
                    return None;
                }
                // Block for the first event of the burst...
                match self.rx.recv() {
                    Ok(msg) => {
                        if let Some(ev) = self.translate(msg) {
                            out.push(ev);
                        }
                    }
                    Err(_) => return None,
                }
            } else {
                // ...then drain whatever arrived meanwhile (natural
                // batching under concurrent clients).
                match self.rx.try_recv() {
                    Ok(msg) => {
                        if let Some(ev) = self.translate(msg) {
                            out.push(ev);
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        Some(out)
    }

    fn send(&mut self, responses: Vec<(ConnId, u64, KvResponse)>, _cost_ns: u64) {
        for (conn, opaque, resp) in responses {
            if let Some(w) = self.writers.get_mut(&conn) {
                // A write failure means the client vanished; its reader
                // thread will report Closed.
                let _ = write_frame(w, &encode_response(opaque, &resp));
            }
        }
    }
}

/// A minimal blocking client for the real-socket mode (tests and demos).
pub struct KvClient {
    stream: TcpStream,
}

impl KvClient {
    /// Connects to a [`TcpTransport`] server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<KvClient> {
        Ok(KvClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a malformed or missing response surfaces as
    /// `InvalidData`/`UnexpectedEof`.
    pub fn call(&mut self, opaque: u64, req: &KvRequest) -> io::Result<(u64, KvResponse)> {
        write_frame(&mut self.stream, &encode_request(opaque, req))?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-call")
        })?;
        decode_response(&payload)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response frame"))
    }
}
