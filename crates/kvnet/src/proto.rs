//! Wire protocol: typed requests/responses and the length-prefixed binary
//! framing codec shared by both transports.
//!
//! A frame is a `u32` little-endian payload length followed by the payload.
//! Every payload starts with a `u64` little-endian *opaque* token the server
//! echoes back unchanged (as in memcached's binary protocol), so clients —
//! and the simulated transport's latency accounting — can match responses
//! to requests even when admission control reorders them.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload; larger length prefixes are rejected as
/// corruption rather than allocated.
pub const MAX_FRAME: usize = 16 << 20;

const OP_SET: u8 = 0;
const OP_GET: u8 = 1;

const RESP_STORED: u8 = 0;
const RESP_VALUE: u8 = 1;
const RESP_NOT_FOUND: u8 = 2;
const RESP_OVERLOADED: u8 = 3;
const RESP_RETRY: u8 = 4;

/// One decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvRequest {
    /// Store `value` under `key`. Coalesced into batched transactions.
    Set {
        /// The key bytes (the table id lives in the first 8).
        key: Vec<u8>,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Read `key`. Served as a snapshot read off the volatile cache.
    Get {
        /// The key bytes.
        key: Vec<u8>,
    },
}

impl From<clobber_workloads::Request> for KvRequest {
    fn from(r: clobber_workloads::Request) -> KvRequest {
        match r {
            clobber_workloads::Request::Set { key, value } => KvRequest::Set { key, value },
            clobber_workloads::Request::Get { key } => KvRequest::Get { key },
        }
    }
}

/// One typed server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResponse {
    /// The `set` committed.
    Stored,
    /// The `get` found this value.
    Value(Vec<u8>),
    /// The `get` found nothing.
    NotFound,
    /// Admission control shed the request; resubmit after backoff.
    Overloaded,
    /// Wait-die refused a lock; resubmitting is always safe.
    Retry {
        /// The contended lock id.
        lock: u64,
    },
}

/// Encodes `(opaque, req)` into a frame payload.
pub fn encode_request(opaque: u64, req: &KvRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&opaque.to_le_bytes());
    match req {
        KvRequest::Set { key, value } => {
            out.push(OP_SET);
            out.extend_from_slice(&(key.len() as u16).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        KvRequest::Get { key } => {
            out.push(OP_GET);
            out.extend_from_slice(&(key.len() as u16).to_le_bytes());
            out.extend_from_slice(key);
        }
    }
    out
}

/// Decodes a request frame payload; `None` marks a malformed frame.
pub fn decode_request(buf: &[u8]) -> Option<(u64, KvRequest)> {
    let mut c = Cursor::new(buf);
    let opaque = c.u64()?;
    let op = c.u8()?;
    let klen = c.u16()? as usize;
    let key = c.bytes(klen)?;
    let req = match op {
        OP_SET => {
            let vlen = c.u32()? as usize;
            KvRequest::Set {
                key,
                value: c.bytes(vlen)?,
            }
        }
        OP_GET => KvRequest::Get { key },
        _ => return None,
    };
    c.done()?;
    Some((opaque, req))
}

/// Encodes `(opaque, resp)` into a frame payload.
pub fn encode_response(opaque: u64, resp: &KvResponse) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&opaque.to_le_bytes());
    match resp {
        KvResponse::Stored => out.push(RESP_STORED),
        KvResponse::Value(v) => {
            out.push(RESP_VALUE);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        KvResponse::NotFound => out.push(RESP_NOT_FOUND),
        KvResponse::Overloaded => out.push(RESP_OVERLOADED),
        KvResponse::Retry { lock } => {
            out.push(RESP_RETRY);
            out.extend_from_slice(&lock.to_le_bytes());
        }
    }
    out
}

/// Decodes a response frame payload; `None` marks a malformed frame.
pub fn decode_response(buf: &[u8]) -> Option<(u64, KvResponse)> {
    let mut c = Cursor::new(buf);
    let opaque = c.u64()?;
    let resp = match c.u8()? {
        RESP_STORED => KvResponse::Stored,
        RESP_VALUE => {
            let len = c.u32()? as usize;
            KvResponse::Value(c.bytes(len)?)
        }
        RESP_NOT_FOUND => KvResponse::NotFound,
        RESP_OVERLOADED => KvResponse::Overloaded,
        RESP_RETRY => KvResponse::Retry { lock: c.u64()? },
        _ => return None,
    };
    c.done()?;
    Some((opaque, resp))
}

/// Writes one `u32`-LE length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` marks clean EOF at a frame boundary.
///
/// # Errors
///
/// Propagates the underlying I/O error; an oversized length prefix
/// (> [`MAX_FRAME`]) or EOF mid-frame surfaces as `InvalidData`.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len[n..])?,
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Option<Vec<u8>> {
        let end = self.at.checked_add(n)?;
        let out = self.buf.get(self.at..end)?.to_vec();
        self.at = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.at)?;
        self.at += 1;
        Some(v)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.bytes(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }

    /// Rejects trailing garbage.
    fn done(&self) -> Option<()> {
        (self.at == self.buf.len()).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for req in [
            KvRequest::Set {
                key: vec![1; 16],
                value: vec![7; 64],
            },
            KvRequest::Get { key: vec![2; 16] },
            KvRequest::Set {
                key: Vec::new(),
                value: Vec::new(),
            },
        ] {
            let frame = encode_request(0xDEAD_BEEF, &req);
            assert_eq!(decode_request(&frame), Some((0xDEAD_BEEF, req)));
        }
    }

    #[test]
    fn response_round_trips() {
        for resp in [
            KvResponse::Stored,
            KvResponse::Value(vec![3; 64]),
            KvResponse::NotFound,
            KvResponse::Overloaded,
            KvResponse::Retry { lock: 42 },
        ] {
            let frame = encode_response(99, &resp);
            assert_eq!(decode_response(&frame), Some((99, resp)));
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert_eq!(decode_request(&[]), None);
        assert_eq!(decode_request(&[0; 9]), None); // truncated after op byte
        let mut frame = encode_request(1, &KvRequest::Get { key: vec![0; 16] });
        frame[8] = 0xFF; // unknown op
        assert_eq!(decode_request(&frame), None);
        let mut ok = encode_response(1, &KvResponse::Stored);
        ok.push(0); // trailing garbage
        assert_eq!(decode_response(&ok), None);
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut r = &wire[..];
        assert!(read_frame(&mut r).is_err());
    }
}
