//! The service core: batched writes, snapshot reads, counters, and the
//! batch-framing trace events.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use clobber_apps::KvServer;
use clobber_nvm::{Runtime, TxError};
use clobber_trace::EventKind;

use crate::proto::{KvRequest, KvResponse};
use crate::transport::{ConnId, Envelope};

/// Collapses a key's bytes to the table's `u64` key id (the workload
/// generator embeds the id in the first 8 bytes; shorter keys are
/// zero-extended so arbitrary client keys stay valid).
pub fn key_id(key: &[u8]) -> u64 {
    let mut id = [0u8; 8];
    let n = key.len().min(8);
    id[..n].copy_from_slice(&key[..n]);
    u64::from_le_bytes(id)
}

/// The KV service: a [`KvServer`] plus the batching and snapshot-read
/// machinery the serve loop drives.
pub struct KvService {
    rt: Arc<Runtime>,
    server: KvServer,
    batch_seq: u64,
}

impl KvService {
    /// Wraps a server whose txfuncs are already registered with `rt`.
    pub fn new(rt: Arc<Runtime>, server: KvServer) -> KvService {
        KvService {
            rt,
            server,
            batch_seq: 0,
        }
    }

    /// The backing runtime.
    pub fn rt(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// The wrapped server.
    pub fn server(&self) -> &KvServer {
        &self.server
    }

    /// Batches closed so far.
    pub fn batches(&self) -> u64 {
        self.batch_seq
    }

    /// Executes one admitted batch on logical slot `slot` and returns the
    /// responses in request order.
    ///
    /// All `Set`s in the batch run as ONE failure-atomic transaction under
    /// the union of their exclusive bucket locks — one commit fence
    /// (coalesced further by group commit) shared by every client in the
    /// batch. The batch is framed by [`EventKind::NetBatchOpen`] /
    /// [`EventKind::NetBatchClose`] trace events recorded under the fault
    /// mutex, so a crash injected mid-batch replays at the same point.
    /// `Get`s are answered *after* the writes commit, directly off the
    /// volatile cache without entering a transaction — a batch reads its
    /// own writes.
    ///
    /// # Errors
    ///
    /// Propagates [`TxError`] from the batch transaction (an injected crash
    /// surfaces here) or a corrupt chain during a snapshot read.
    pub fn process_batch_on(
        &mut self,
        slot: usize,
        batch: &[Envelope],
    ) -> Result<Vec<(ConnId, u64, KvResponse)>, TxError> {
        let pool = self.rt.pool().clone();
        let sets: Vec<(u64, Vec<u8>)> = batch
            .iter()
            .filter_map(|e| match &e.req {
                KvRequest::Set { key, value } => Some((key_id(key), value.clone())),
                KvRequest::Get { .. } => None,
            })
            .collect();
        if !sets.is_empty() {
            self.batch_seq += 1;
            pool.trace_app_event(
                EventKind::NetBatchOpen,
                0,
                self.batch_seq,
                sets.len() as u64,
            );
            self.server.table().insert_batch_on(&self.rt, slot, &sets)?;
            pool.trace_app_event(
                EventKind::NetBatchClose,
                0,
                self.batch_seq,
                sets.len() as u64,
            );
            pool.stats()
                .net_batched
                .fetch_add(sets.len() as u64, Ordering::Relaxed);
        }
        batch
            .iter()
            .map(|e| {
                let resp = match &e.req {
                    KvRequest::Set { .. } => KvResponse::Stored,
                    KvRequest::Get { key } => {
                        pool.stats()
                            .net_snapshot_reads
                            .fetch_add(1, Ordering::Relaxed);
                        match self.server.table().snapshot_get(&pool, key_id(key))? {
                            Some(v) => KvResponse::Value(v),
                            None => KvResponse::NotFound,
                        }
                    }
                };
                Ok((e.conn, e.opaque, resp))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clobber_apps::LockScheme;
    use clobber_nvm::{Backend, RuntimeOptions};
    use clobber_pmem::{PmemPool, PoolOptions};

    fn setup() -> KvService {
        let pool = Arc::new(PmemPool::create(PoolOptions::performance(64 << 20)).unwrap());
        let rt = Arc::new(Runtime::create(pool, RuntimeOptions::new(Backend::clobber())).unwrap());
        let server = KvServer::create(&rt, LockScheme::BucketRw).unwrap();
        KvService::new(rt, server)
    }

    fn env(conn: ConnId, opaque: u64, req: KvRequest) -> Envelope {
        Envelope { conn, opaque, req }
    }

    #[test]
    fn a_batch_of_sets_is_one_transaction_and_reads_its_own_writes() {
        let mut svc = setup();
        let batch: Vec<Envelope> = (0..8u64)
            .map(|i| {
                env(
                    i as usize,
                    i,
                    KvRequest::Set {
                        key: clobber_workloads::RequestStream::key_bytes(i),
                        value: clobber_workloads::RequestStream::value_bytes(i),
                    },
                )
            })
            .chain(std::iter::once(env(
                8,
                99,
                KvRequest::Get {
                    key: clobber_workloads::RequestStream::key_bytes(3),
                },
            )))
            .collect();
        let stats = svc.rt().pool().stats().clone();
        let before = stats.snapshot();
        let responses = svc.process_batch_on(0, &batch).unwrap();
        let d = stats.snapshot().delta(&before);
        assert_eq!(d.publishes, 1, "eight sets, ONE committing transaction");
        assert_eq!(d.net_batched, 8);
        assert_eq!(d.net_snapshot_reads, 1);
        assert_eq!(responses.len(), 9);
        assert_eq!(responses[3].2, KvResponse::Stored);
        assert_eq!(
            responses[8],
            (
                8,
                99,
                KvResponse::Value(clobber_workloads::RequestStream::value_bytes(3))
            ),
            "a batch reads its own writes"
        );
        assert_eq!(svc.batches(), 1);
    }

    #[test]
    fn a_get_only_batch_opens_no_transaction() {
        let mut svc = setup();
        let stats = svc.rt().pool().stats().clone();
        let before = stats.snapshot();
        let responses = svc
            .process_batch_on(
                0,
                &[env(
                    0,
                    1,
                    KvRequest::Get {
                        key: clobber_workloads::RequestStream::key_bytes(7),
                    },
                )],
            )
            .unwrap();
        assert_eq!(responses[0].2, KvResponse::NotFound);
        let d = stats.snapshot().delta(&before);
        assert_eq!((d.fences, d.vlog_entries, d.log_entries), (0, 0, 0));
        assert_eq!(svc.batches(), 0, "no sets, no batch sequence consumed");
    }

    #[test]
    fn key_id_zero_extends_short_keys() {
        assert_eq!(key_id(&[1]), 1);
        assert_eq!(key_id(&[]), 0);
        assert_eq!(key_id(&clobber_workloads::RequestStream::key_bytes(77)), 77);
    }
}
