//! Admission control: per-connection inflight windows plus a global cap.
//!
//! The controller is the service's backpressure valve. A request that would
//! push its connection past `per_conn_window`, or the service past
//! `global_cap`, is refused — the serve loop answers it immediately with a
//! typed [`KvResponse::Overloaded`](crate::KvResponse::Overloaded) instead
//! of queueing it unboundedly, so tail latency under overload stays bounded
//! by design rather than by memory exhaustion.

use std::collections::HashMap;

use crate::transport::ConnId;

/// Admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Most requests one connection may have in flight.
    pub per_conn_window: usize,
    /// Most requests the whole service may have in flight.
    pub global_cap: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            per_conn_window: 8,
            global_cap: 64,
        }
    }
}

/// The admission controller (owned by the serve loop; no interior locking —
/// admission decisions are part of the deterministic service schedule).
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    inflight: HashMap<ConnId, usize>,
    total: usize,
}

impl Admission {
    /// A controller with the given limits.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg,
            inflight: HashMap::new(),
            total: 0,
        }
    }

    /// Admits one request from `conn`, or refuses it (shed) when either
    /// limit would be exceeded.
    pub fn try_admit(&mut self, conn: ConnId) -> bool {
        let per_conn = self.inflight.entry(conn).or_insert(0);
        if *per_conn >= self.cfg.per_conn_window || self.total >= self.cfg.global_cap {
            return false;
        }
        *per_conn += 1;
        self.total += 1;
        true
    }

    /// Marks one admitted request from `conn` answered.
    pub fn complete(&mut self, conn: ConnId) {
        if let Some(n) = self.inflight.get_mut(&conn) {
            if *n > 0 {
                *n -= 1;
                self.total -= 1;
            }
        }
    }

    /// Drops all accounting for a closed connection.
    pub fn forget(&mut self, conn: ConnId) {
        if let Some(n) = self.inflight.remove(&conn) {
            self.total -= n;
        }
    }

    /// Requests currently admitted and unanswered.
    pub fn inflight(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_conn_window_refuses_the_overflow() {
        let mut adm = Admission::new(AdmissionConfig {
            per_conn_window: 2,
            global_cap: 100,
        });
        assert!(adm.try_admit(1));
        assert!(adm.try_admit(1));
        assert!(!adm.try_admit(1), "third in-flight exceeds the window");
        assert!(adm.try_admit(2), "other connections are unaffected");
        adm.complete(1);
        assert!(adm.try_admit(1), "completion frees a window slot");
    }

    #[test]
    fn global_cap_sheds_across_connections() {
        let mut adm = Admission::new(AdmissionConfig {
            per_conn_window: 10,
            global_cap: 3,
        });
        assert!(adm.try_admit(1));
        assert!(adm.try_admit(2));
        assert!(adm.try_admit(3));
        assert!(!adm.try_admit(4), "cap reached");
        assert_eq!(adm.inflight(), 3);
        adm.complete(2);
        assert!(adm.try_admit(4));
    }

    #[test]
    fn forget_releases_a_connections_whole_window() {
        let mut adm = Admission::new(AdmissionConfig {
            per_conn_window: 4,
            global_cap: 4,
        });
        for _ in 0..4 {
            assert!(adm.try_admit(7));
        }
        assert!(!adm.try_admit(8));
        adm.forget(7);
        assert_eq!(adm.inflight(), 0);
        assert!(adm.try_admit(8));
    }
}
