//! Loopback smoke test for the real-socket transport. Skips gracefully
//! when the sandbox forbids sockets (bind/connect failure is not a test
//! failure — the deterministic transport remains the oracle).

use std::sync::Arc;

use clobber_apps::{KvServer, LockScheme};
use clobber_kvnet::{
    serve, Admission, AdmissionConfig, KvClient, KvRequest, KvResponse, KvService, ServeConfig,
    TcpTransport,
};
use clobber_nvm::{Backend, Runtime, RuntimeOptions};
use clobber_pmem::{PmemPool, PoolOptions};
use clobber_workloads::RequestStream;

fn service() -> KvService {
    let pool = Arc::new(PmemPool::create(PoolOptions::performance(16 << 20)).unwrap());
    let rt = Arc::new(Runtime::create(pool, RuntimeOptions::new(Backend::clobber())).unwrap());
    let server = KvServer::create(&rt, LockScheme::BucketRw).unwrap();
    KvService::new(rt, server)
}

#[test]
fn loopback_set_get_roundtrip() {
    let mut transport = match TcpTransport::bind("127.0.0.1:0", 1) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("skipping tcp smoke test: cannot bind loopback: {e}");
            return;
        }
    };
    let addr = transport.local_addr();
    let server = std::thread::spawn(move || {
        let mut svc = service();
        let mut adm = Admission::new(AdmissionConfig::default());
        serve(&mut svc, &mut adm, &mut transport, &ServeConfig::default())
    });

    let mut client = match KvClient::connect(addr) {
        Err(e) => {
            eprintln!("skipping tcp smoke test: cannot connect loopback: {e}");
            // Unblock the acceptor-bounded server before bailing out.
            drop(server);
            return;
        }
        Ok(c) => c,
    };
    for k in 0..8u64 {
        let (opaque, resp) = client
            .call(
                k,
                &KvRequest::Set {
                    key: RequestStream::key_bytes(k),
                    value: RequestStream::value_bytes(k),
                },
            )
            .unwrap();
        assert_eq!(opaque, k);
        assert_eq!(resp, KvResponse::Stored);
    }
    let (_, resp) = client
        .call(
            100,
            &KvRequest::Get {
                key: RequestStream::key_bytes(3),
            },
        )
        .unwrap();
    assert_eq!(resp, KvResponse::Value(RequestStream::value_bytes(3)));
    let (_, resp) = client
        .call(
            101,
            &KvRequest::Get {
                key: RequestStream::key_bytes(4096),
            },
        )
        .unwrap();
    assert_eq!(resp, KvResponse::NotFound);

    // Closing the only expected connection ends the serve loop cleanly.
    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn loopback_overload_sheds_typed_response() {
    let mut transport = match TcpTransport::bind("127.0.0.1:0", 1) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("skipping tcp smoke test: cannot bind loopback: {e}");
            return;
        }
    };
    let addr = transport.local_addr();
    let server = std::thread::spawn(move || {
        let mut svc = service();
        // A zero global cap sheds every request with the typed response.
        let mut adm = Admission::new(AdmissionConfig {
            per_conn_window: 1,
            global_cap: 0,
        });
        serve(&mut svc, &mut adm, &mut transport, &ServeConfig::default())
    });

    let mut client = match KvClient::connect(addr) {
        Err(e) => {
            eprintln!("skipping tcp smoke test: cannot connect loopback: {e}");
            drop(server);
            return;
        }
        Ok(c) => c,
    };
    let (_, resp) = client
        .call(
            7,
            &KvRequest::Set {
                key: RequestStream::key_bytes(1),
                value: RequestStream::value_bytes(1),
            },
        )
        .unwrap();
    assert_eq!(resp, KvResponse::Overloaded);
    drop(client);
    server.join().unwrap().unwrap();
}
