//! Crash sweep over the batched service path (satellite 1).
//!
//! The DES transport makes a whole multi-client batched service run a
//! deterministic persist-event stream, so the core crash-sweep recipe
//! applies unchanged: count the events once, then for each chosen index
//! `k` replay the identical run, trip an injected crash at `k` (often
//! mid-batch, between a batch's open and close frames), take an
//! adversarial `drop_all` power failure, recover, and check that the
//! table conserves the workload invariant. Runs at shard counts {1, 4}.

use std::sync::Arc;

use clobber_apps::{KvServer, LockScheme};
use clobber_kvnet::{
    serve, Admission, AdmissionConfig, Envelope, KvRequest, KvResponse, KvService, ServeConfig,
    SimNet, SimNetConfig,
};
use clobber_nvm::{Backend, Runtime, RuntimeOptions, TxError};
use clobber_pmem::{
    CacheImpl, CrashConfig, FaultPlan, LogFormat, PmemPool, PoolConcurrency, PoolMode, PoolOptions,
};
use clobber_workloads::{Mix, RequestStream};

/// Small log capacities keep each replayed pool cheap to create.
fn net_options() -> RuntimeOptions {
    let mut opts = RuntimeOptions::new(Backend::clobber());
    opts.clobber_log_cap = 32 << 10;
    opts.redo_log_cap = 32 << 10;
    opts.log_format = LogFormat::V2;
    opts
}

/// A small multi-client population: enough clients that batches really
/// coalesce, few enough requests that the sweep stays cheap.
fn sim_cfg() -> SimNetConfig {
    SimNetConfig {
        clients: 4,
        requests_per_client: 5,
        key_space: 64,
        seed: 7,
        mix: Mix::InsertMost,
        zipf_theta: Some(0.9),
        window: 1,
        think_ns: 500,
        shed_backoff_ns: 20_000,
    }
}

/// Fresh pool + service, identical across calls so persist-event streams
/// replay exactly.
fn setup(concurrency: PoolConcurrency) -> (Arc<PmemPool>, KvService) {
    let opts = PoolOptions::crash_sim(2 << 20).with_concurrency(concurrency);
    let pool = Arc::new(PmemPool::create(opts).unwrap());
    let rt = Arc::new(Runtime::create(pool.clone(), net_options()).unwrap());
    let server = KvServer::create(&rt, LockScheme::BucketRw).unwrap();
    (pool, KvService::new(rt, server))
}

/// Drives the whole simulated population through the batched serve loop.
/// An injected crash surfaces as the `TxError` from the mid-batch
/// transaction (a trip on a trailing fence can still complete `Ok`).
fn run_batched_service(svc: &mut KvService) -> Result<(), TxError> {
    let mut adm = Admission::new(AdmissionConfig::default());
    let mut net = SimNet::new(&sim_cfg()).with_window(1);
    serve(
        svc,
        &mut adm,
        &mut net,
        &ServeConfig {
            max_batch: 8,
            ..ServeConfig::default()
        },
    )
}

/// Every key in the table must carry exactly the deterministic workload
/// value for that key — whatever committed prefix of batches survived.
fn check_table(pool: &PmemPool, server: &KvServer, ctx: &str) {
    for (key, value) in server.table().dump(pool).unwrap() {
        assert_eq!(
            value,
            RequestStream::value_bytes(key),
            "{ctx}: key {key} holds a torn or foreign value"
        );
    }
    pool.check_heap()
        .unwrap_or_else(|e| panic!("{ctx}: heap check failed: {e}"));
}

/// Counts the persist events one full service run issues.
fn count_events(concurrency: PoolConcurrency) -> u64 {
    let (pool, mut svc) = setup(concurrency);
    pool.arm_faults(FaultPlan::count_only());
    run_batched_service(&mut svc).expect("count run must not fail");
    let n = pool.disarm_faults();
    assert!(n > 0, "service run must issue persist events");
    check_table(&pool, svc.server(), "baseline");
    n
}

/// Replays the run to event `k`, trips, and returns the surviving media
/// after an adversarial power failure.
fn crash_at(concurrency: PoolConcurrency, k: u64) -> Vec<u8> {
    let (pool, mut svc) = setup(concurrency);
    pool.arm_faults(FaultPlan::crash_at(k));
    let _ = run_batched_service(&mut svc);
    assert_eq!(pool.fault_tripped(), Some(k), "event {k} must trip");
    pool.crash(&CrashConfig::drop_all(0x17E7 ^ k))
        .unwrap()
        .media_snapshot()
}

/// Recovers `media`, checks the table invariant, recovery idempotence,
/// and that the recovered service keeps serving batches.
fn recover_and_check(media: Vec<u8>, concurrency: PoolConcurrency, ctx: &str) {
    let pool = Arc::new(
        PmemPool::open_from_media_with(media, PoolMode::CrashSim, CacheImpl::Dense, concurrency)
            .unwrap(),
    );
    let rt = Arc::new(Runtime::open(pool.clone(), net_options()).unwrap());
    KvServer::register(&rt);
    rt.recover_with(&clobber_nvm::RecoveryOptions::default().no_wait())
        .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
    let server = KvServer::open(&rt, LockScheme::BucketRw).unwrap();
    check_table(&pool, &server, ctx);
    // Idempotence: recovery left nothing ongoing behind.
    let again = rt
        .recover_with(&clobber_nvm::RecoveryOptions::default().no_wait())
        .unwrap();
    assert!(
        again.is_clean(),
        "{ctx}: second recover found leftover work: {again:?}"
    );
    // The recovered table keeps serving batched writes.
    let mut svc = KvService::new(rt, server);
    let responses = svc
        .process_batch_on(
            0,
            &[Envelope {
                conn: 0,
                opaque: 0,
                req: KvRequest::Set {
                    key: RequestStream::key_bytes(999),
                    value: RequestStream::value_bytes(999),
                },
            }],
        )
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery batch failed: {e}"));
    assert_eq!(responses[0].2, KvResponse::Stored, "{ctx}");
    check_table(&pool, svc.server(), ctx);
}

/// The sweep: ~24 evenly-spaced crash points over the run.
fn sweep_net(concurrency: PoolConcurrency) {
    let events = count_events(concurrency);
    let stride = (events / 24).max(1);
    let mut k = 0;
    let mut points = 0;
    while k < events {
        let media = crash_at(concurrency, k);
        recover_and_check(media, concurrency, &format!("{concurrency:?} k={k}"));
        points += 1;
        k += stride;
    }
    assert!(points > 0);
}

#[test]
fn batched_service_crash_sweep_global_lock() {
    sweep_net(PoolConcurrency::GlobalLock);
}

#[test]
fn batched_service_crash_sweep_sharded4() {
    sweep_net(PoolConcurrency::Sharded { shards: 4 });
}

/// The ordering contract extends through the service layer: the whole
/// multi-client batched run issues the same number of persist events at
/// every shard count.
#[test]
fn service_event_count_is_shard_invariant() {
    let baseline = count_events(PoolConcurrency::GlobalLock);
    for concurrency in [
        PoolConcurrency::Sharded { shards: 4 },
        PoolConcurrency::SingleThread,
    ] {
        assert_eq!(baseline, count_events(concurrency), "{concurrency:?}");
    }
}
