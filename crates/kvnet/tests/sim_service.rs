//! DES-transport service runs: bit-determinism across pool engines, fence
//! amortization from batching, admission shedding, and snapshot reads.

use std::sync::Arc;

use clobber_apps::{KvServer, LockScheme};
use clobber_kvnet::{
    serve, Admission, AdmissionConfig, KvService, ServeConfig, SimNet, SimNetConfig, SimReport,
};
use clobber_nvm::{Backend, Runtime, RuntimeOptions};
use clobber_pmem::{PmemPool, PoolConcurrency, PoolOptions, StatsSnapshot, Trace, Tracer};
use clobber_trace::EventKind;
use clobber_workloads::{Mix, RequestStream};

struct RunOutput {
    report: SimReport,
    stats: StatsSnapshot,
    trace: Trace,
    pairs: Vec<(u64, Vec<u8>)>,
}

fn run_service(
    concurrency: PoolConcurrency,
    cfg: &SimNetConfig,
    max_batch: usize,
    adm: AdmissionConfig,
) -> RunOutput {
    let pool = Arc::new(
        PmemPool::create(PoolOptions::crash_sim(16 << 20).with_concurrency(concurrency)).unwrap(),
    );
    let rt =
        Arc::new(Runtime::create(pool.clone(), RuntimeOptions::new(Backend::clobber())).unwrap());
    let server = KvServer::create(&rt, LockScheme::BucketRw).unwrap();
    let tracer = Arc::new(Tracer::new());
    pool.set_tracer(Some(tracer.clone()));
    let mut svc = KvService::new(rt, server);
    let mut admission = Admission::new(adm);
    let mut net = SimNet::new(cfg).with_window(cfg.window);
    serve(
        &mut svc,
        &mut admission,
        &mut net,
        &ServeConfig {
            max_batch,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    pool.set_tracer(None);
    let mut pairs = svc.server().table().dump(&pool).unwrap();
    pairs.sort();
    RunOutput {
        report: net.report(),
        stats: pool.stats().snapshot(),
        trace: tracer.take(),
        pairs,
    }
}

fn base_cfg() -> SimNetConfig {
    SimNetConfig {
        clients: 6,
        requests_per_client: 32,
        key_space: 256,
        seed: 11,
        mix: Mix::InsertMost,
        zipf_theta: Some(0.99),
        window: 1,
        think_ns: 500,
        shed_backoff_ns: 20_000,
    }
}

/// The tentpole determinism criterion: the same simulated client
/// population against the same service must produce bit-identical traces,
/// counters, latencies, and table contents on every pool engine.
#[test]
fn des_service_runs_are_bit_deterministic_across_engines() {
    let cfg = base_cfg();
    let adm = AdmissionConfig::default();
    let golden = run_service(PoolConcurrency::GlobalLock, &cfg, 16, adm);
    assert!(golden.report.completed == 6 * 32, "{:?}", golden.report);
    for concurrency in [
        PoolConcurrency::Sharded { shards: 4 },
        PoolConcurrency::SingleThread,
    ] {
        let other = run_service(concurrency, &cfg, 16, adm);
        assert_eq!(
            other.trace, golden.trace,
            "trace diverged under {concurrency:?}"
        );
        assert_eq!(
            other.stats, golden.stats,
            "counters diverged under {concurrency:?}"
        );
        assert_eq!(
            other.report, golden.report,
            "latency report diverged under {concurrency:?}"
        );
        assert_eq!(
            other.pairs, golden.pairs,
            "table contents diverged under {concurrency:?}"
        );
    }
    // The table holds exactly the deterministic workload values.
    assert!(!golden.pairs.is_empty());
    for (key, value) in &golden.pairs {
        assert_eq!(value, &RequestStream::value_bytes(*key));
    }
    // net_* accounting closes: every accepted request was either batched
    // into a transaction (set) or served off the snapshot path (get).
    let s = &golden.stats;
    assert_eq!(s.net_accepted, s.net_batched + s.net_snapshot_reads);
    assert_eq!(s.net_accepted, golden.report.completed);
}

/// The tentpole amortization criterion: with ≥4 concurrent clients,
/// batched group commit spends fewer fences per request than per-request
/// commit on the identical workload.
#[test]
fn batched_commit_amortizes_fences_across_clients() {
    let cfg = base_cfg();
    let adm = AdmissionConfig::default();
    let batched = run_service(PoolConcurrency::GlobalLock, &cfg, 16, adm);
    let per_request = run_service(PoolConcurrency::GlobalLock, &cfg, 1, adm);
    assert_eq!(batched.report.completed, per_request.report.completed);
    assert_eq!(
        batched.pairs, per_request.pairs,
        "batching must not change the table contents"
    );
    let fences_per_req = |o: &RunOutput| o.stats.fences as f64 / o.report.completed.max(1) as f64;
    assert!(
        fences_per_req(&batched) < fences_per_req(&per_request),
        "batched {} >= per-request {} fences/request",
        fences_per_req(&batched),
        fences_per_req(&per_request)
    );
    // The batcher genuinely coalesced multiple clients: some batch-open
    // event records at least 4 requests in one transaction.
    let best_batch = batched
        .trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::NetBatchOpen)
        .map(|e| e.b)
        .max()
        .unwrap_or(0);
    assert!(
        best_batch >= 4,
        "largest coalesced batch only had {best_batch} requests"
    );
    // Batch framing is balanced: every open has a matching close.
    let opens = batched
        .trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::NetBatchOpen)
        .count();
    let closes = batched
        .trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::NetBatchClose)
        .count();
    assert_eq!(opens, closes);
    assert!(opens > 0);
    // And per-request mode batches exactly one set per transaction.
    assert!(per_request
        .trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::NetBatchOpen)
        .all(|e| e.b == 1));
}

/// Overload sheds with the typed response instead of queueing; shed
/// requests are resubmitted by the client and eventually complete.
#[test]
fn overload_sheds_typed_responses_and_work_still_completes() {
    let cfg = SimNetConfig {
        clients: 8,
        window: 2,
        ..base_cfg()
    };
    let tight = AdmissionConfig {
        per_conn_window: 1,
        global_cap: 3,
    };
    let out = run_service(PoolConcurrency::GlobalLock, &cfg, 16, tight);
    assert!(
        out.report.shed > 0,
        "tight caps must shed: {:?}",
        out.report
    );
    assert_eq!(out.stats.net_shed, out.report.shed);
    assert_eq!(out.report.completed, 8 * 32, "shed work completes on retry");
    assert_eq!(out.stats.net_accepted, out.report.completed);
    // Shedding shows up in the tail, not just the counters.
    assert!(out.report.p999_ns >= out.report.p99_ns);

    // An uncontended run with the same population sheds nothing.
    let roomy = run_service(
        PoolConcurrency::GlobalLock,
        &cfg,
        16,
        AdmissionConfig::default(),
    );
    assert_eq!(roomy.report.shed, 0);
    assert_eq!(roomy.stats.net_shed, 0);
}

/// Search-heavy traffic rides the snapshot path: reads never enter a
/// transaction, so a get-dominated mix spends almost no fences.
#[test]
fn snapshot_gets_bypass_transactions() {
    let cfg = SimNetConfig {
        mix: Mix::SearchIntensive,
        ..base_cfg()
    };
    let out = run_service(
        PoolConcurrency::GlobalLock,
        &cfg,
        16,
        AdmissionConfig::default(),
    );
    assert!(out.stats.net_snapshot_reads > out.stats.net_batched);
    assert_eq!(
        out.stats.net_accepted,
        out.stats.net_batched + out.stats.net_snapshot_reads
    );
    // The insert-heavy mix from the same population pays far more fences.
    let writey = run_service(
        PoolConcurrency::GlobalLock,
        &base_cfg(),
        16,
        AdmissionConfig::default(),
    );
    assert!(out.stats.fences < writey.stats.fences / 2);
}
