//! The typed event model.
//!
//! Every event carries the pool-wide persist-event sequence number it was
//! observed at (`seq`), the recording thread's registration index
//! (`thread`), a kind, an optional interned-name id, and two kind-specific
//! payload words. Events pack into exactly four `u64` words so a ring slot
//! is four atomic stores — see [`ThreadRing`](crate::ring::ThreadRing).

/// What happened. The discriminant is part of the binary format — append
/// new kinds at the end, never renumber.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A store reached the pool (`a` = offset, `b` = length).
    Store = 0,
    /// A line write-back was issued (`a` = offset, `b` = length).
    Flush = 1,
    /// An ordering fence was issued.
    Fence = 2,
    /// A transaction was dispatched (`name` = txfunc, `a` = slot index,
    /// `b` = argument blob id). Recorded at dispatch, not at the durable
    /// begin record, so read-only transactions appear too — replay drives
    /// the schedule from exactly these events.
    TxBegin = 3,
    /// A transaction committed (`a` = slot id).
    TxCommit = 4,
    /// A transaction aborted (`a` = slot id).
    TxAbort = 5,
    /// An undo/clobber/redo log entry was appended (`a` = target offset,
    /// `b` = payload length).
    UlogAppend = 6,
    /// A v_log record was persisted (`a` = slot base offset, `b` = bytes;
    /// begin records and preserves both count).
    VlogAppend = 7,
    /// An immediate allocation was served (`a` = payload offset, `b` = size).
    Alloc = 8,
    /// A block was freed (`a` = payload offset).
    Free = 9,
    /// A zero-fence transactional reservation was served (`a` = payload
    /// offset, `b` = size).
    Reserve = 10,
    /// Reservations were published at commit (`a` = count).
    Publish = 11,
    /// Reservations were cancelled on abort (`a` = count).
    Cancel = 12,
    /// An armed fault plan tripped (`a` = the tripping persist event).
    FaultTrip = 13,
    /// Recovery progress (`a` = step code from
    /// [`recovery_steps`](crate::recovery_steps), `b` = step-specific).
    RecoveryStep = 14,
    /// A group-commit epoch closed: its leader issued the shared ordering
    /// fence (`a` = epoch number, `b` = committers coalesced into it).
    GroupCommitEpoch = 15,
    /// A lock-manager lock was granted (`a` = lock id, `b` = mode:
    /// 0 shared, 1 exclusive).
    LockAcquire = 16,
    /// A lock-manager lock was released (`a` = lock id, `b` = mode).
    LockRelease = 17,
    /// A lock request conflicted — a `try_acquire` was refused or a
    /// blocking acquire had to wait (`a` = lock id, `b` = mode).
    LockConflict = 18,
    /// A KV service batch opened: the batcher is about to run a coalesced
    /// set of client requests as one locked transaction (`a` = batch
    /// sequence number, `b` = requests in the batch). Emitted under the
    /// fault mutex like every app event, so mid-batch crashes replay
    /// deterministically.
    NetBatchOpen = 19,
    /// A KV service batch closed after its transaction committed
    /// (`a` = batch sequence number, `b` = requests in the batch).
    NetBatchClose = 20,
}

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; 21] = [
        EventKind::Store,
        EventKind::Flush,
        EventKind::Fence,
        EventKind::TxBegin,
        EventKind::TxCommit,
        EventKind::TxAbort,
        EventKind::UlogAppend,
        EventKind::VlogAppend,
        EventKind::Alloc,
        EventKind::Free,
        EventKind::Reserve,
        EventKind::Publish,
        EventKind::Cancel,
        EventKind::FaultTrip,
        EventKind::RecoveryStep,
        EventKind::GroupCommitEpoch,
        EventKind::LockAcquire,
        EventKind::LockRelease,
        EventKind::LockConflict,
        EventKind::NetBatchOpen,
        EventKind::NetBatchClose,
    ];

    /// Decodes a discriminant byte.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }

    /// Short label for exporters.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Store => "store",
            EventKind::Flush => "flush",
            EventKind::Fence => "fence",
            EventKind::TxBegin => "tx_begin",
            EventKind::TxCommit => "tx_commit",
            EventKind::TxAbort => "tx_abort",
            EventKind::UlogAppend => "ulog_append",
            EventKind::VlogAppend => "vlog_append",
            EventKind::Alloc => "alloc",
            EventKind::Free => "free",
            EventKind::Reserve => "reserve",
            EventKind::Publish => "publish",
            EventKind::Cancel => "cancel",
            EventKind::FaultTrip => "fault_trip",
            EventKind::RecoveryStep => "recovery_step",
            EventKind::GroupCommitEpoch => "group_commit_epoch",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::LockRelease => "lock_release",
            EventKind::LockConflict => "lock_conflict",
            EventKind::NetBatchOpen => "net_batch_open",
            EventKind::NetBatchClose => "net_batch_close",
        }
    }
}

/// One recorded event.
///
/// `seq` is the number of persist events (store/flush/fence) observed
/// *before* this event for non-persist kinds, and the event's own index for
/// persist kinds — i.e. events sort into the pool-wide total order by
/// `(seq, thread, ring position)`, which is exactly how
/// [`Tracer::take`](crate::ring::Tracer::take) merges rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Persist-event sequence stamp (see type docs).
    pub seq: u64,
    /// Recording thread's registration index within its tracer.
    pub thread: u32,
    /// What happened.
    pub kind: EventKind,
    /// Interned-name id (`0` = none; resolve via
    /// [`Trace::name`](crate::export::Trace::name)).
    pub name: u32,
    /// First payload word (kind-specific, see [`EventKind`]).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
}

impl TraceEvent {
    /// Packs into the ring's four-word representation.
    pub(crate) fn pack(&self) -> [u64; 4] {
        let w1 = (self.kind as u64) | ((self.thread as u64) << 8) | ((self.name as u64) << 32);
        [self.seq, w1, self.a, self.b]
    }

    /// Unpacks a ring slot. Returns `None` for an invalid kind byte (which
    /// would indicate ring corruption, not a caller error).
    pub(crate) fn unpack(w: [u64; 4]) -> Option<TraceEvent> {
        Some(TraceEvent {
            seq: w[0],
            thread: ((w[1] >> 8) & 0xFF_FFFF) as u32,
            kind: EventKind::from_u8((w[1] & 0xFF) as u8)?,
            name: (w[1] >> 32) as u32,
            a: w[2],
            b: w[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        for kind in EventKind::ALL {
            let ev = TraceEvent {
                seq: 0xDEAD_BEEF_0042,
                thread: 7,
                kind,
                name: 12345,
                a: u64::MAX - 3,
                b: 9,
            };
            assert_eq!(TraceEvent::unpack(ev.pack()), Some(ev));
        }
    }

    #[test]
    fn kind_discriminants_are_stable() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*kind as u8 as usize, i);
            assert_eq!(EventKind::from_u8(i as u8), Some(*kind));
        }
        assert_eq!(EventKind::from_u8(EventKind::ALL.len() as u8), None);
    }
}
