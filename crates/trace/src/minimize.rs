//! Delta-debugging minimization of failing schedules.
//!
//! Classic ddmin (Zeller & Hildebrandt): given a sequence of items and a
//! predicate that says whether a candidate subsequence still fails, find a
//! locally 1-minimal failing subsequence by alternately trying
//! ever-smaller chunks and their complements. The runtime crate applies
//! this to recorded transaction schedules — the predicate replays the
//! candidate schedule against a fresh pool and reports whether the failure
//! reproduces — but the algorithm itself is generic and pure.

/// Minimizes `items` to a locally minimal subsequence for which `fails`
/// still returns `true`. Relative order of the surviving items is
/// preserved. If the full input does not fail, it is returned unchanged
/// (there is nothing to minimize toward).
///
/// The predicate must be deterministic; it is called O(n²) times in the
/// worst case, typically far fewer.
pub fn ddmin<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunks = chunk_ranges(current.len(), granularity);
        let mut reduced = false;

        // Try each chunk alone: does a small slice already fail?
        for r in &chunks {
            let candidate: Vec<T> = current[r.clone()].to_vec();
            if fails(&candidate) {
                current = candidate;
                granularity = 2;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }

        // Try each complement: can we drop a chunk and still fail?
        if granularity > 2 {
            for r in &chunks {
                let candidate: Vec<T> = current[..r.start]
                    .iter()
                    .chain(&current[r.end..])
                    .cloned()
                    .collect();
                if fails(&candidate) {
                    current = candidate;
                    granularity = (granularity - 1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if reduced {
            continue;
        }

        if granularity >= current.len() {
            break;
        }
        granularity = (granularity * 2).min(current.len());
    }
    current
}

/// Splits `len` items into `n` contiguous near-equal ranges.
fn chunk_ranges(len: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    let n = n.min(len).max(1);
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let end = ((i + 1) * len) / n;
        if end > start {
            out.push(start..end);
        }
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_culprit() {
        let items: Vec<u32> = (0..64).collect();
        let out = ddmin(&items, |c| c.contains(&37));
        assert_eq!(out, vec![37]);
    }

    #[test]
    fn finds_scattered_pair_in_order() {
        let items: Vec<u32> = (0..100).collect();
        let out = ddmin(&items, |c| c.contains(&3) && c.contains(&91));
        assert_eq!(out, vec![3, 91]);
    }

    #[test]
    fn preserves_order_dependence() {
        // Fails only if 5 appears before 60 — minimizer must keep both and
        // their relative order.
        let items: Vec<u32> = (0..80).collect();
        let out = ddmin(&items, |c| {
            let i5 = c.iter().position(|&x| x == 5);
            let i60 = c.iter().position(|&x| x == 60);
            matches!((i5, i60), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(out, vec![5, 60]);
    }

    #[test]
    fn non_failing_input_is_untouched() {
        let items = vec![1, 2, 3];
        let out = ddmin(&items, |_| false);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_input() {
        let out = ddmin(&Vec::<u8>::new(), |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_cover_everything() {
        for len in 1..20 {
            for n in 1..25 {
                let rs = chunk_ranges(len, n);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, len);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }
}
