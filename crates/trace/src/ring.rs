//! Capture: lock-free per-thread rings and the [`Tracer`] that owns them.
//!
//! A [`ThreadRing`] is an append-only buffer of packed events with exactly
//! one writer — the owning thread — publishing each slot with a `Release`
//! store of the length. Readers ([`Tracer::take`]) observe a consistent
//! prefix with one `Acquire` load. No slot is ever rewritten, so there is
//! no ABA hazard and no unsafe code; a full ring counts drops instead of
//! wrapping, keeping every captured trace a faithful *prefix* of the run.
//!
//! The hot-path cost when tracing is enabled is one thread-local lookup and
//! four relaxed atomic stores; when disabled the recording sites are never
//! reached at all (the pool checks one relaxed flag).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::event::{EventKind, TraceEvent};
use crate::export::Trace;

/// Default per-thread ring capacity, in events (4 words = 32 bytes each).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One thread's append-only event buffer.
///
/// Safe to share (`&self` methods over atomics), but the push contract is
/// single-writer: only the thread the ring was registered for may
/// [`push`](Self::push). The [`Tracer`] enforces this by handing each
/// thread its own ring through thread-local storage.
pub struct ThreadRing {
    /// This ring's thread registration index within its tracer.
    thread: u32,
    /// Packed event words, `capacity * 4` long.
    words: Box<[AtomicU64]>,
    /// Published event count. `Release` on push, `Acquire` on read.
    len: AtomicUsize,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
}

impl ThreadRing {
    fn new(thread: u32, capacity: usize) -> ThreadRing {
        let words = (0..capacity * 4).map(|_| AtomicU64::new(0)).collect();
        ThreadRing {
            thread,
            words,
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one event; returns `false` (and counts a drop) if full.
    fn push(&self, seq: u64, kind: EventKind, name: u32, a: u64, b: u64) -> bool {
        let n = self.len.load(Ordering::Relaxed);
        if (n + 1) * 4 > self.words.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let ev = TraceEvent {
            seq,
            thread: self.thread,
            kind,
            name,
            a,
            b,
        };
        for (i, w) in ev.pack().into_iter().enumerate() {
            self.words[n * 4 + i].store(w, Ordering::Relaxed);
        }
        self.len.store(n + 1, Ordering::Release);
        true
    }

    /// Copies the published events out, in append order.
    fn events(&self) -> Vec<TraceEvent> {
        let n = self.len.load(Ordering::Acquire);
        (0..n)
            .filter_map(|i| {
                let w = [
                    self.words[i * 4].load(Ordering::Relaxed),
                    self.words[i * 4 + 1].load(Ordering::Relaxed),
                    self.words[i * 4 + 2].load(Ordering::Relaxed),
                    self.words[i * 4 + 3].load(Ordering::Relaxed),
                ];
                TraceEvent::unpack(w)
            })
            .collect()
    }

    fn reset(&self) -> u64 {
        self.len.store(0, Ordering::Release);
        self.dropped.swap(0, Ordering::Relaxed)
    }
}

/// Interning table handing out stable ids (starting at 1; 0 = none).
#[derive(Default)]
struct Interner<K: std::hash::Hash + Eq + Clone> {
    ids: HashMap<K, u32>,
    list: Vec<K>,
}

impl<K: std::hash::Hash + Eq + Clone> Interner<K> {
    fn intern(&mut self, key: &K) -> u32 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        self.list.push(key.clone());
        let id = self.list.len() as u32;
        self.ids.insert(key.clone(), id);
        id
    }
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of `(tracer id, ring)` pairs. Weak so a dropped
    /// tracer frees its rings even while threads still hold cache entries.
    static TLS_RINGS: RefCell<Vec<(u64, Weak<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

/// A capture session: the ring registry plus name/blob interning tables.
///
/// Threads register lazily on their first [`record`](Self::record); their
/// registration order defines the `thread` index stamped into events, so a
/// single-threaded run always records as thread 0 — which is what makes
/// golden traces comparable across runs and engines.
pub struct Tracer {
    id: u64,
    capacity: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    names: Mutex<Interner<String>>,
    blobs: Mutex<Interner<Vec<u8>>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("id", &self.id)
            .field("capacity", &self.capacity)
            .field("threads", &self.thread_count())
            .finish()
    }
}

impl Tracer {
    /// A tracer with [`DEFAULT_RING_CAPACITY`] events per thread ring.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// A tracer with an explicit per-thread ring capacity (in events).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            capacity: capacity.max(1),
            rings: Mutex::new(Vec::new()),
            names: Mutex::new(Interner::default()),
            blobs: Mutex::new(Interner::default()),
        }
    }

    /// The calling thread's ring, registering it on first use.
    fn my_ring(&self) -> Arc<ThreadRing> {
        TLS_RINGS.with(|cell| {
            let mut cache = cell.borrow_mut();
            if let Some((_, weak)) = cache.iter().find(|(id, _)| *id == self.id) {
                if let Some(ring) = weak.upgrade() {
                    return ring;
                }
            }
            cache.retain(|(_, weak)| weak.strong_count() > 0);
            let mut rings = self.rings.lock().unwrap();
            let ring = Arc::new(ThreadRing::new(rings.len() as u32, self.capacity));
            rings.push(ring.clone());
            cache.push((self.id, Arc::downgrade(&ring)));
            ring
        })
    }

    /// Records one event at sequence stamp `seq`; returns `false` if the
    /// calling thread's ring was full and the event was dropped.
    pub fn record(&self, seq: u64, kind: EventKind, name: u32, a: u64, b: u64) -> bool {
        self.my_ring().push(seq, kind, name, a, b)
    }

    /// Interns a transaction (or step) name, returning its stable id ≥ 1.
    pub fn intern(&self, name: &str) -> u32 {
        // Cold path only (once per distinct name per event site would still
        // be fine — the table is tiny).
        let mut names = self.names.lock().unwrap();
        if let Some(&id) = names.ids.get(name) {
            return id;
        }
        names.intern(&name.to_string())
    }

    /// Interns an opaque byte blob (e.g. serialized transaction arguments),
    /// returning its stable id ≥ 1. Identical blobs share an id.
    pub fn record_blob(&self, bytes: &[u8]) -> u32 {
        self.blobs.lock().unwrap().intern(&bytes.to_vec())
    }

    /// Number of threads that have registered rings.
    pub fn thread_count(&self) -> usize {
        self.rings.lock().unwrap().len()
    }

    /// Events dropped so far across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Drains all rings into a merged [`Trace`] and resets them; interning
    /// tables are snapshotted but kept (ids stay valid across takes).
    ///
    /// Events merge into the pool-wide total order: stable sort by
    /// `(seq, thread)`, which preserves each ring's append order for equal
    /// keys. Call from a quiescent point — a thread still recording while
    /// its ring is drained keeps its in-flight events for the next take,
    /// but the drain itself is always safe.
    pub fn take(&self) -> Trace {
        let rings = self.rings.lock().unwrap();
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut dropped = 0;
        for ring in rings.iter() {
            events.extend(ring.events());
            dropped += ring.reset();
        }
        events.sort_by_key(|e| (e.seq, e.thread));
        Trace {
            events,
            names: self.names.lock().unwrap().list.clone(),
            blobs: self.blobs.lock().unwrap().list.clone(),
            dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_tables() {
        let t = Tracer::new();
        let name = t.intern("put");
        assert_eq!(name, 1);
        assert_eq!(t.intern("put"), 1, "interning is stable");
        let blob = t.record_blob(b"args");
        assert_eq!(t.record_blob(b"args"), blob, "blobs dedupe");
        assert!(t.record(0, EventKind::Store, 0, 64, 8));
        assert!(t.record(1, EventKind::Fence, 0, 0, 0));
        assert!(t.record(1, EventKind::TxBegin, name, 0, blob as u64));
        let trace = t.take();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.events[0].kind, EventKind::Store);
        assert_eq!(trace.events[2].kind, EventKind::TxBegin);
        assert_eq!(trace.name(name), Some("put"));
        assert_eq!(trace.blob(blob), Some(&b"args"[..]));
        assert_eq!(trace.dropped, 0);
        assert_eq!(t.take().events.len(), 0, "take drains");
    }

    #[test]
    fn full_ring_counts_drops() {
        let t = Tracer::with_capacity(2);
        assert!(t.record(0, EventKind::Store, 0, 0, 0));
        assert!(t.record(1, EventKind::Store, 0, 0, 0));
        assert!(!t.record(2, EventKind::Store, 0, 0, 0));
        let trace = t.take();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 1);
    }

    #[test]
    fn threads_get_distinct_rings() {
        let t = Arc::new(Tracer::new());
        t.record(0, EventKind::Fence, 0, 0, 0);
        let t2 = t.clone();
        std::thread::spawn(move || {
            t2.record(1, EventKind::Fence, 0, 0, 0);
        })
        .join()
        .unwrap();
        assert_eq!(t.thread_count(), 2);
        let trace = t.take();
        assert_eq!(trace.events[0].thread, 0);
        assert_eq!(trace.events[1].thread, 1);
    }
}
