//! A drained capture ([`Trace`]) and its exporters.
//!
//! Three consumers, three formats:
//!
//! * **Diffing** ([`Trace::diff`]) — the golden-trace and replay tests
//!   compare traces event-for-event, resolving interned names and argument
//!   blobs so two captures diff equal even if their interning orders were
//!   to differ.
//! * **Chrome trace-event JSON** ([`Trace::to_chrome_json`]) — loadable in
//!   Perfetto / `chrome://tracing`; the persist-event sequence number is
//!   used as the timestamp axis, which is exactly the deterministic
//!   ordering axis, so two runs of the same schedule render identically.
//! * **Compact binary** ([`Trace::to_bytes`] / [`Trace::from_bytes`]) — the
//!   `CTRC` format: a header, the interning tables, then 32 bytes per
//!   event. Round-trips exactly; used by the crash-sweep replay smoke and
//!   the bench `--trace-out` option.

use crate::event::{EventKind, TraceEvent};

/// Magic prefix of the binary format.
const MAGIC: &[u8; 4] = b"CTRC";
/// Current binary format version.
const VERSION: u32 = 1;

/// A merged, drained capture: events in the pool-wide total order plus the
/// resolved interning tables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Events sorted by `(seq, thread)`, ring order preserved within ties.
    pub events: Vec<TraceEvent>,
    /// Interned names; id `n` (≥ 1) lives at `names[n - 1]`.
    pub names: Vec<String>,
    /// Interned blobs; id `n` (≥ 1) lives at `blobs[n - 1]`.
    pub blobs: Vec<Vec<u8>>,
    /// Events lost to full rings. A non-zero value means the event list is
    /// a per-thread prefix of the run, not the whole run.
    pub dropped: u64,
}

/// Where two traces first disagree. `left`/`right` is `None` when that
/// trace simply ended first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDivergence {
    /// Index of the first differing event.
    pub index: usize,
    /// The left trace's event at `index`, if any.
    pub left: Option<TraceEvent>,
    /// The right trace's event at `index`, if any.
    pub right: Option<TraceEvent>,
}

impl std::fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "traces diverge at event {}: left={:?} right={:?}",
            self.index, self.left, self.right
        )
    }
}

/// Why a binary trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// Input shorter than its header/tables/events claim.
    Truncated,
    /// The `CTRC` magic was missing.
    BadMagic,
    /// A version this build doesn't understand.
    BadVersion(u32),
    /// An event word carried an unknown kind discriminant.
    BadEvent(usize),
    /// An interned name was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::Truncated => write!(f, "trace truncated"),
            TraceDecodeError::BadMagic => write!(f, "not a CTRC trace"),
            TraceDecodeError::BadVersion(v) => write!(f, "unsupported CTRC version {v}"),
            TraceDecodeError::BadEvent(i) => write!(f, "undecodable event at index {i}"),
            TraceDecodeError::BadUtf8 => write!(f, "interned name is not UTF-8"),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

/// A payload word with interning resolved, for resolve-aware diffing.
#[derive(PartialEq, Eq, Debug)]
enum Resolved<'a> {
    Raw(u64),
    Blob(Option<&'a [u8]>),
}

impl Trace {
    /// Resolves an interned name id (`0` or out-of-range → `None`).
    pub fn name(&self, id: u32) -> Option<&str> {
        (id != 0)
            .then(|| self.names.get(id as usize - 1))
            .flatten()
            .map(String::as_str)
    }

    /// Resolves an interned blob id (`0` or out-of-range → `None`).
    pub fn blob(&self, id: u32) -> Option<&[u8]> {
        (id != 0)
            .then(|| self.blobs.get(id as usize - 1))
            .flatten()
            .map(Vec::as_slice)
    }

    /// Event counts per kind, indexed by discriminant.
    pub fn kind_counts(&self) -> [u64; EventKind::ALL.len()] {
        let mut counts = [0u64; EventKind::ALL.len()];
        for e in &self.events {
            counts[e.kind as usize] += 1;
        }
        counts
    }

    /// An event's identity with interned ids replaced by what they resolve
    /// to, so traces from different tracers compare by meaning, not by the
    /// accident of interning order.
    fn resolved_key(
        &self,
        e: &TraceEvent,
    ) -> (u64, u32, u8, Option<&str>, Resolved<'_>, Resolved<'_>) {
        let b = match e.kind {
            // TxBegin's second payload word is an argument blob id.
            EventKind::TxBegin => Resolved::Blob(self.blob(e.b as u32)),
            _ => Resolved::Raw(e.b),
        };
        (
            e.seq,
            e.thread,
            e.kind as u8,
            self.name(e.name),
            Resolved::Raw(e.a),
            b,
        )
    }

    /// First divergence between two traces, or `None` if they are
    /// equivalent event-for-event (names and blobs resolved).
    pub fn diff(&self, other: &Trace) -> Option<TraceDivergence> {
        let n = self.events.len().max(other.events.len());
        for i in 0..n {
            let l = self.events.get(i);
            let r = other.events.get(i);
            let same = match (l, r) {
                (Some(a), Some(b)) => self.resolved_key(a) == other.resolved_key(b),
                _ => false,
            };
            if !same {
                return Some(TraceDivergence {
                    index: i,
                    left: l.copied(),
                    right: r.copied(),
                });
            }
        }
        None
    }

    /// Serializes to Chrome trace-event JSON (the `{"traceEvents": [...]}`
    /// envelope), loadable in Perfetto and `chrome://tracing`. The
    /// persist-event sequence number is the timestamp; each event is a
    /// 1-tick complete event so it renders with visible width.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = self.name(e.name).unwrap_or(e.kind.label());
            out.push_str("{\"name\":\"");
            escape_json_into(name, &mut out);
            out.push_str("\",\"cat\":\"");
            out.push_str(e.kind.label());
            out.push_str("\",\"ph\":\"X\",\"dur\":1,\"pid\":1,\"tid\":");
            out.push_str(&e.thread.to_string());
            out.push_str(",\"ts\":");
            out.push_str(&e.seq.to_string());
            out.push_str(",\"args\":{\"a\":");
            out.push_str(&e.a.to_string());
            out.push_str(",\"b\":");
            out.push_str(&e.b.to_string());
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Serializes to the compact `CTRC` binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.events.len() * 32);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for name in &self.names {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        out.extend_from_slice(&(self.blobs.len() as u32).to_le_bytes());
        for blob in &self.blobs {
            out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            out.extend_from_slice(blob);
        }
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for e in &self.events {
            for w in e.pack() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Decodes the `CTRC` binary format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceDecodeError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(4)? != MAGIC {
            return Err(TraceDecodeError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(TraceDecodeError::BadVersion(version));
        }
        let dropped = r.u64()?;
        let mut names = Vec::new();
        for _ in 0..r.u32()? {
            let len = r.u32()? as usize;
            let s = std::str::from_utf8(r.take(len)?).map_err(|_| TraceDecodeError::BadUtf8)?;
            names.push(s.to_string());
        }
        let mut blobs = Vec::new();
        for _ in 0..r.u32()? {
            let len = r.u32()? as usize;
            blobs.push(r.take(len)?.to_vec());
        }
        let count = r.u64()? as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        for i in 0..count {
            let w = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            events.push(TraceEvent::unpack(w).ok_or(TraceDecodeError::BadEvent(i))?);
        }
        Ok(Trace {
            events,
            names,
            blobs,
            dropped,
        })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceDecodeError> {
        let end = self.at.checked_add(n).ok_or(TraceDecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(TraceDecodeError::Truncated);
        }
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, TraceDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TraceDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    seq: 0,
                    thread: 0,
                    kind: EventKind::TxBegin,
                    name: 1,
                    a: 0,
                    b: 1,
                },
                TraceEvent {
                    seq: 0,
                    thread: 0,
                    kind: EventKind::Store,
                    name: 0,
                    a: 4096,
                    b: 8,
                },
                TraceEvent {
                    seq: 1,
                    thread: 0,
                    kind: EventKind::Fence,
                    name: 0,
                    a: 0,
                    b: 0,
                },
            ],
            names: vec!["transfer".into()],
            blobs: vec![vec![1, 2, 3]],
            dropped: 0,
        }
    }

    #[test]
    fn binary_round_trips() {
        let t = sample();
        let decoded = Trace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
        assert_eq!(t.diff(&decoded), None);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Trace::from_bytes(b"nope"), Err(TraceDecodeError::BadMagic));
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceDecodeError::Truncated));
        let mut versioned = sample().to_bytes();
        versioned[4] = 0xEE;
        assert!(matches!(
            Trace::from_bytes(&versioned),
            Err(TraceDecodeError::BadVersion(_))
        ));
    }

    #[test]
    fn diff_resolves_interning() {
        let t = sample();
        // Same meaning, different interning order: extra unused entries
        // shift the ids.
        let mut other = sample();
        other.names = vec!["unused".into(), "transfer".into()];
        other.blobs = vec![vec![9], vec![1, 2, 3]];
        other.events[0].name = 2;
        other.events[0].b = 2;
        assert_eq!(t.diff(&other), None);

        // A genuinely different payload diverges.
        let mut bad = sample();
        bad.events[1].a = 8192;
        let d = t.diff(&bad).unwrap();
        assert_eq!(d.index, 1);

        // Length mismatch diverges at the shorter trace's end.
        let mut short = sample();
        short.events.pop();
        let d = t.diff(&short).unwrap();
        assert_eq!(d.index, 2);
        assert!(d.right.is_none());
    }

    #[test]
    fn chrome_json_is_wellformed_enough() {
        let mut t = sample();
        t.names[0] = "with \"quotes\"\n".into();
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\u000a"));
        assert!(json.contains("\"cat\":\"store\""));
        assert_eq!(json.matches("{\"name\":").count(), t.events.len());
    }

    #[test]
    fn kind_counts_tally() {
        let counts = sample().kind_counts();
        assert_eq!(counts[EventKind::TxBegin as usize], 1);
        assert_eq!(counts[EventKind::Store as usize], 1);
        assert_eq!(counts[EventKind::Fence as usize], 1);
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }
}
