//! Deterministic persist-event tracing for the Clobber-NVM reproduction.
//!
//! The paper's evaluation attributes performance to *counts* of fences,
//! flushes, and logged bytes; this crate records the *order*: a typed event
//! stream stamped with the pool-wide persist-event sequence that the pmem
//! substrate's single fault mutex already defines. Because every armed (or
//! traced) store/flush/fence acquires that mutex before touching any shard,
//! the recorded stream is bit-identical at every `PoolConcurrency` engine
//! and shard count — the same contract the lock-step proptests enforce for
//! counters, now extended to full event sequences.
//!
//! This crate is deliberately foundation-only: it knows nothing about pools
//! or transactions. `clobber-pmem` depends on it and calls
//! [`Tracer::record`] from under the fault mutex; `clobber-nvm` adds the
//! transaction-level events and a replay driver on top.
//!
//! Pieces:
//!
//! * [`TraceEvent`] / [`EventKind`] — the event model (module [`event`]).
//! * [`Tracer`] / [`ThreadRing`] — capture: lock-free per-thread append-only
//!   rings of packed events, plus interning tables for transaction names
//!   and argument blobs (module [`ring`]).
//! * [`Trace`] — a drained capture: merged events + resolved tables, with
//!   exporters to Chrome trace-event JSON (Perfetto-loadable) and a compact
//!   binary format (module [`export`]).
//! * [`ddmin`] — a generic delta-debugging minimizer that shrinks a failing
//!   schedule to a locally minimal repro (module [`minimize`]).
//! * [`tx_footprints`] / [`ConflictPolicy`] — per-transaction persist
//!   footprints and the conflict relation the schedule explorer's
//!   DPOR-style pruning keys on (module [`conflict`]).

pub mod conflict;
pub mod event;
pub mod export;
pub mod minimize;
pub mod ring;

pub use conflict::{tx_footprints, ConflictPolicy, Footprint, TxFootprint};
pub use event::{EventKind, TraceEvent};
pub use export::{Trace, TraceDecodeError, TraceDivergence};
pub use minimize::ddmin;
pub use ring::{ThreadRing, Tracer};

/// Step codes carried in the `a` field of [`EventKind::RecoveryStep`]
/// events. Kept here (rather than in the runtime crate) so trace consumers
/// can decode recovery traces without depending on the runtime.
pub mod recovery_steps {
    /// Recovery began examining a slot (`b` = slot index).
    pub const SCAN_SLOT: u64 = 0;
    /// Clobbered inputs restored from the clobber_log (`b` = entries).
    pub const RESTORE: u64 = 1;
    /// An interrupted transaction is being re-executed (`name` = txfunc).
    pub const REEXECUTE: u64 = 2;
    /// An uncommitted transaction was rolled back (undo/Atlas/redo).
    pub const ROLLBACK: u64 = 3;
    /// A committed redo log was replayed to completion.
    pub const REDO_APPLY: u64 = 4;
    /// An interrupted transaction was abandoned (missing preserve).
    pub const ABANDON: u64 = 5;
    /// Re-execution resumed from a persisted checkpoint instead of
    /// restarting (`b` = the checkpoint's store watermark).
    pub const RESUME: u64 = 6;
    /// A re-execution progress checkpoint was persisted (`b` = the new
    /// store watermark).
    pub const CHECKPOINT: u64 = 7;
    /// Best-effort recovery quarantined a slot (`b` = slot index).
    pub const QUARANTINE: u64 = 8;

    /// Human-readable label for a step code.
    pub fn label(code: u64) -> &'static str {
        match code {
            SCAN_SLOT => "scan_slot",
            RESTORE => "restore",
            REEXECUTE => "reexecute",
            ROLLBACK => "rollback",
            REDO_APPLY => "redo_apply",
            ABANDON => "abandon",
            RESUME => "resume",
            CHECKPOINT => "checkpoint",
            QUARANTINE => "quarantine",
            _ => "unknown",
        }
    }
}
