//! Trace-side dependence analysis: per-transaction persist footprints and
//! the conflict relation the schedule explorer's DPOR-style pruning keys on.
//!
//! A recorded [`Trace`] already carries the address range of every persist
//! event (store/flush offsets and lengths, ulog append targets, allocator
//! payload spans). Segmenting the event stream at `TxBegin` boundaries
//! yields one [`TxFootprint`] per dispatched transaction: the union of
//! address ranges its execution persisted. Two transactions *conflict* when
//! those ranges overlap — swapping two adjacent non-conflicting
//! transactions in a schedule cannot change the final durable state, which
//! is exactly the commutativity fact sleep-set pruning exploits.
//!
//! Soundness caveats, encoded in [`ConflictPolicy`]:
//!
//! * **Allocator coupling.** Two transactions that both call into the
//!   persistent allocator race on shared arena state: reordering them can
//!   swap the blocks they receive, which changes durable bytes even though
//!   their *own* store ranges were disjoint. By default any two
//!   allocator-using transactions conflict ([`ConflictPolicy::alloc_conflicts`]).
//! * **Pure reads are invisible.** The trace records persist events, not
//!   loads, so a read-only dependence (T2 branches on a cell T1 wrote but
//!   never writes it back) is not captured. Under Clobber-NVM's model the
//!   inputs that matter for recovery are *clobbered* (read-then-overwritten)
//!   and those do appear as stores; workloads with pure-read control
//!   dependences should disable pruning ([`ConflictPolicy::all_conflict`]).

use crate::event::EventKind;
use crate::export::Trace;

/// A set of half-open `[start, end)` byte ranges, sorted and coalesced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Coalesced ranges in ascending order.
    pub ranges: Vec<(u64, u64)>,
    /// Whether the transaction called into the persistent allocator
    /// (alloc/free/reserve/publish/cancel).
    pub uses_allocator: bool,
}

impl Footprint {
    /// Adds `[start, start + len)`; zero-length ranges are ignored.
    pub fn add(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.ranges.push((start, start.saturating_add(len)));
    }

    /// Sorts and coalesces the accumulated ranges.
    pub fn normalize(&mut self) {
        self.ranges.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(self.ranges.len());
        for &(s, e) in &self.ranges {
            match out.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        self.ranges = out;
    }

    /// `true` if no ranges were recorded (e.g. a read-only transaction).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total bytes covered (after [`normalize`](Self::normalize)).
    pub fn bytes(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// `true` if any range of `self` overlaps any range of `other`. Both
    /// must be normalized (sorted, coalesced).
    pub fn overlaps(&self, other: &Footprint) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (a_s, a_e) = self.ranges[i];
            let (b_s, b_e) = other.ranges[j];
            if a_s < b_e && b_s < a_e {
                return true;
            }
            if a_e <= b_e {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }
}

/// What counts as a conflict between two transactions' footprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictPolicy {
    /// Any two allocator-using transactions conflict (sound default: they
    /// race on shared arena state, so reordering changes block placement).
    pub alloc_conflicts: bool,
    /// Every pair conflicts — disables commutativity pruning entirely.
    /// The escape hatch for workloads with pure-read control dependences.
    pub all_conflict: bool,
}

impl Default for ConflictPolicy {
    fn default() -> Self {
        ConflictPolicy {
            alloc_conflicts: true,
            all_conflict: false,
        }
    }
}

impl ConflictPolicy {
    /// The sound default policy.
    pub fn sound() -> Self {
        Self::default()
    }

    /// A policy under which every pair conflicts (no pruning).
    pub fn no_pruning() -> Self {
        ConflictPolicy {
            alloc_conflicts: true,
            all_conflict: true,
        }
    }

    /// Decides whether two footprints conflict under this policy.
    pub fn conflicts(&self, a: &Footprint, b: &Footprint) -> bool {
        if self.all_conflict {
            return true;
        }
        if self.alloc_conflicts && a.uses_allocator && b.uses_allocator {
            return true;
        }
        a.overlaps(b)
    }
}

/// One dispatched transaction's persist footprint, extracted from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxFootprint {
    /// Index among the trace's `TxBegin` events (dispatch order).
    pub op_index: usize,
    /// Logical-thread slot the transaction ran on (`TxBegin.a`).
    pub slot: u64,
    /// Interned name id of the txfunc (resolve via [`Trace::name`]).
    pub name: u32,
    /// Union of persisted address ranges.
    pub footprint: Footprint,
}

/// Extracts one [`TxFootprint`] per `TxBegin` event, in dispatch order.
///
/// Events preceding the first `TxBegin` (pool setup, slot creation) belong
/// to no transaction and are ignored. Range sources per event kind:
/// `Store`/`Flush` cover `[a, a + b)`; `UlogAppend` covers its target
/// `[a, a + b)`; `Alloc`/`Reserve` cover the served payload `[a, a + b)`
/// and mark the allocator; `Free`/`Cancel` mark the allocator, as does
/// `Publish` with a non-zero block count (commit paths emit an empty
/// publish even for allocation-free transactions).
pub fn tx_footprints(trace: &Trace) -> Vec<TxFootprint> {
    let mut out: Vec<TxFootprint> = Vec::new();
    for e in &trace.events {
        match e.kind {
            EventKind::TxBegin => out.push(TxFootprint {
                op_index: out.len(),
                slot: e.a,
                name: e.name,
                footprint: Footprint::default(),
            }),
            EventKind::Store | EventKind::Flush | EventKind::UlogAppend => {
                if let Some(cur) = out.last_mut() {
                    cur.footprint.add(e.a, e.b);
                }
            }
            EventKind::Alloc | EventKind::Reserve => {
                if let Some(cur) = out.last_mut() {
                    cur.footprint.add(e.a, e.b);
                    cur.footprint.uses_allocator = true;
                }
            }
            EventKind::Publish => {
                // Commit paths publish unconditionally; an empty publish
                // (`b` = 0 blocks) moves no allocator state and must not
                // mark allocation-free transactions as allocator users.
                if e.b > 0 {
                    if let Some(cur) = out.last_mut() {
                        cur.footprint.uses_allocator = true;
                    }
                }
            }
            EventKind::Free | EventKind::Cancel => {
                if let Some(cur) = out.last_mut() {
                    cur.footprint.uses_allocator = true;
                }
            }
            EventKind::Fence
            | EventKind::TxCommit
            | EventKind::TxAbort
            | EventKind::VlogAppend
            | EventKind::FaultTrip
            | EventKind::RecoveryStep
            | EventKind::GroupCommitEpoch
            // Lock events are scheduling evidence, not data accesses: the
            // data conflict they guard already shows up as Store/UlogAppend
            // footprints, so counting them would only widen footprints.
            | EventKind::LockAcquire
            | EventKind::LockRelease
            | EventKind::LockConflict
            // Batch framing is service-level annotation: the batch's data
            // accesses show up as the coalesced transaction's own events.
            | EventKind::NetBatchOpen
            | EventKind::NetBatchClose => {}
        }
    }
    for f in &mut out {
        f.footprint.normalize();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn ev(kind: EventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            seq: 0,
            thread: 0,
            kind,
            name: 0,
            a,
            b,
        }
    }

    #[test]
    fn normalize_coalesces_and_sorts() {
        let mut f = Footprint::default();
        f.add(100, 8);
        f.add(0, 4);
        f.add(104, 16); // overlaps [100,108)
        f.add(4, 4); // adjacent to [0,4)
        f.add(50, 0); // ignored
        f.normalize();
        assert_eq!(f.ranges, vec![(0, 8), (100, 120)]);
        assert_eq!(f.bytes(), 28);
    }

    #[test]
    fn overlap_is_exact_on_boundaries() {
        let mut a = Footprint::default();
        a.add(0, 8);
        a.add(64, 8);
        a.normalize();
        let mut b = Footprint::default();
        b.add(8, 56); // touches [0,8) only at the boundary — no overlap
        b.normalize();
        assert!(!a.overlaps(&b));
        let mut c = Footprint::default();
        c.add(71, 1);
        c.normalize();
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
        assert!(!Footprint::default().overlaps(&a));
    }

    #[test]
    fn footprints_segment_at_tx_begin() {
        let trace = Trace {
            events: vec![
                ev(EventKind::Store, 9999, 8), // pre-tx setup: ignored
                {
                    let mut e = ev(EventKind::TxBegin, 0, 1);
                    e.name = 1;
                    e
                },
                ev(EventKind::Store, 100, 8),
                ev(EventKind::UlogAppend, 100, 8),
                ev(EventKind::Fence, 0, 0),
                ev(EventKind::TxBegin, 1, 2),
                ev(EventKind::Store, 200, 16),
                ev(EventKind::Alloc, 4096, 32),
            ],
            names: vec!["t".into()],
            blobs: vec![vec![], vec![]],
            dropped: 0,
        };
        let fps = tx_footprints(&trace);
        assert_eq!(fps.len(), 2);
        assert_eq!(fps[0].slot, 0);
        assert_eq!(fps[0].footprint.ranges, vec![(100, 108)]);
        assert!(!fps[0].footprint.uses_allocator);
        assert_eq!(fps[1].slot, 1);
        assert_eq!(fps[1].footprint.ranges, vec![(200, 216), (4096, 4128)]);
        assert!(fps[1].footprint.uses_allocator);
    }

    #[test]
    fn empty_publish_does_not_mark_allocator() {
        let trace = Trace {
            events: vec![
                ev(EventKind::TxBegin, 0, 1),
                ev(EventKind::Store, 100, 8),
                ev(EventKind::Publish, 0, 0), // allocation-free commit
                ev(EventKind::TxBegin, 1, 2),
                ev(EventKind::Store, 200, 8),
                ev(EventKind::Publish, 0, 2), // two blocks published
            ],
            names: vec![],
            blobs: vec![],
            dropped: 0,
        };
        let fps = tx_footprints(&trace);
        assert!(!fps[0].footprint.uses_allocator);
        assert!(fps[1].footprint.uses_allocator);
    }

    #[test]
    fn policy_rules() {
        let mut a = Footprint::default();
        a.add(0, 8);
        a.normalize();
        let mut b = Footprint::default();
        b.add(100, 8);
        b.normalize();
        let policy = ConflictPolicy::sound();
        assert!(!policy.conflicts(&a, &b), "disjoint ranges commute");

        let mut a_alloc = a.clone();
        a_alloc.uses_allocator = true;
        let mut b_alloc = b.clone();
        b_alloc.uses_allocator = true;
        assert!(
            policy.conflicts(&a_alloc, &b_alloc),
            "two allocator users conflict"
        );
        assert!(
            !policy.conflicts(&a_alloc, &b),
            "one allocator user alone does not"
        );

        assert!(ConflictPolicy::no_pruning().conflicts(&a, &b));
    }

    #[test]
    fn empty_footprint_commutes_with_everything() {
        let fps = tx_footprints(&Trace {
            events: vec![ev(EventKind::TxBegin, 0, 1), ev(EventKind::TxBegin, 1, 2)],
            names: vec![],
            blobs: vec![],
            dropped: 0,
        });
        assert_eq!(fps.len(), 2);
        assert!(fps[0].footprint.is_empty());
        let policy = ConflictPolicy::sound();
        assert!(!policy.conflicts(&fps[0].footprint, &fps[1].footprint));
    }
}
