//! Fig. 8: Clobber-NVM vs iDO log traffic.
//!
//! The iDO shadow observer (see `clobber_nvm::ido`) watches the same
//! YCSB-Load transactions and charges iDO's logging costs: a register
//! snapshot + live stack bytes at every idempotent-region boundary. The
//! paper reports iDO logging 1–23× more frequently and 4.2× more bytes on
//! average (up to 7.2× on skiplist).

use clobber_nvm::{Backend, RuntimeOptions};
use clobber_pmem::{PmemPool, PoolOptions};
use std::sync::Arc;

use crate::common::{DsHandle, DsKind, PerTx, Scale};
use clobber_workloads::{Workload, WorkloadKind};

/// One comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Structure label.
    pub structure: &'static str,
    /// Clobber-NVM log entries per transaction (clobber_log + v_log).
    pub clobber_points: f64,
    /// Clobber-NVM log bytes per transaction.
    pub clobber_bytes: f64,
    /// iDO logging points per transaction.
    pub ido_points: f64,
    /// iDO log bytes per transaction.
    pub ido_bytes: f64,
}

/// CSV header.
pub const HEADER: &str =
    "structure,clobber_points_per_tx,clobber_bytes_per_tx,ido_points_per_tx,ido_bytes_per_tx";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{:.2},{:.1},{:.2},{:.1}",
            self.structure,
            self.clobber_points,
            self.clobber_bytes,
            self.ido_points,
            self.ido_bytes
        )
    }
}

/// Runs one structure with the iDO shadow attached.
pub fn run_cell(kind: DsKind, scale: Scale) -> Row {
    let pool =
        Arc::new(PmemPool::create(PoolOptions::performance(scale.pool_bytes())).expect("pool"));
    let rt = Arc::new(
        clobber_nvm::Runtime::create(
            pool.clone(),
            RuntimeOptions::new(Backend::clobber()).with_ido_shadow(),
        )
        .expect("runtime"),
    );
    let handle = DsHandle::create(kind, &rt);
    let n = scale.ds_ops();
    let before = pool.stats().snapshot();
    for op in Workload::new(WorkloadKind::Load, n, kind.value_size(), 11) {
        handle.exec(&rt, 0, &op);
    }
    let delta = pool.stats().snapshot().delta(&before);
    let per_tx = PerTx::from_delta(&delta, n);
    let ido = rt.ido_stats();
    let txs = ido.transactions.max(1) as f64;
    Row {
        structure: kind.label(),
        clobber_points: per_tx.total_entries(),
        clobber_bytes: per_tx.total_bytes(),
        ido_points: ido.total.log_points as f64 / txs,
        ido_bytes: ido.total.log_bytes as f64 / txs,
    }
}

/// Runs all four structures.
pub fn run(scale: Scale) -> Vec<Row> {
    DsKind::all()
        .into_iter()
        .map(|k| run_cell(k, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ido_traffic_exceeds_clobber() {
        // The paper's Fig. 8 headline: iDO persists several times more
        // bytes per transaction (4.2x average). Point counts are workload-
        // dependent (1x-23x in the paper); bulk writes our structures use
        // can dip below on the B+Tree, so the byte ratio is the invariant.
        for row in run(Scale::Quick) {
            assert!(
                row.ido_bytes > row.clobber_bytes,
                "iDO must persist more bytes: {row:?}"
            );
            assert!(row.ido_points >= 1.0, "{row:?}");
        }
    }

    #[test]
    fn ido_register_snapshots_cost_real_bytes() {
        for row in run(Scale::Quick) {
            assert!(
                row.ido_bytes >= row.ido_points * 128.0,
                "each iDO point logs at least a register file: {row:?}"
            );
        }
    }

    #[test]
    fn csv_shape() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].csv().split(',').count() == 5);
    }
}
