//! Shared experiment infrastructure: runtime construction, the
//! data-structure abstraction over the four benchmark structures, the
//! DES operation source for YCSB streams, and CSV output.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use std::sync::Mutex;

use clobber_nvm::{Backend, Runtime, RuntimeOptions};
use clobber_pds::{value::key32, BpTree, HashMap, RbTree, SkipList};
use clobber_pmem::{PmemPool, PoolOptions, StatsSnapshot, Trace, Tracer};
use clobber_sim::{CostModel, LockRequest, OpSource, SimOp};
use clobber_workloads::{KvOp, Workload, WorkloadKind};

/// Experiment scale: quick (CI/Criterion) or full (the `repro` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small op counts for fast iteration.
    Quick,
    /// Paper-shaped op counts.
    Full,
}

impl Scale {
    /// YCSB-Load operations per data-structure run.
    pub fn ds_ops(&self) -> u64 {
        match self {
            Scale::Quick => 256,
            Scale::Full => 10_000,
        }
    }

    /// Thread counts swept in scaling figures (paper: up to 24).
    pub fn threads(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![1, 4],
            Scale::Full => vec![1, 2, 4, 8, 16, 24],
        }
    }

    /// Requests per kvserver run.
    pub fn kv_ops(&self) -> u64 {
        match self {
            Scale::Quick => 256,
            Scale::Full => 8_000,
        }
    }

    /// Requests per simulated client in the networked-service figure.
    pub fn kv_net_requests(&self) -> u64 {
        match self {
            Scale::Quick => 48,
            Scale::Full => 256,
        }
    }

    /// Vacation tasks per run.
    pub fn vacation_tasks(&self) -> u64 {
        match self {
            Scale::Quick => 120,
            Scale::Full => 4_000,
        }
    }

    /// Yada input points.
    pub fn yada_points(&self) -> usize {
        match self {
            Scale::Quick => 48,
            Scale::Full => 800,
        }
    }

    /// Pool size in bytes.
    pub fn pool_bytes(&self) -> u64 {
        match self {
            Scale::Quick => 128 << 20,
            Scale::Full => 1 << 30,
        }
    }
}

/// One-shot trace capture state for `--trace-out`: armed by the repro
/// binary, attached to the next pool [`make_runtime`] creates (the
/// figure's first cell — a representative sample), drained afterwards.
enum TraceCapture {
    Off,
    Armed,
    Capturing(Arc<Tracer>),
}

static TRACE_CAPTURE: Mutex<TraceCapture> = Mutex::new(TraceCapture::Off);

/// Arms one-shot trace capture: the next pool built by [`make_runtime`]
/// records its persist-event trace until [`take_captured_trace`] drains
/// it. Tracing stays off for every other pool, so benchmark numbers are
/// unaffected unless capture was explicitly requested.
pub fn arm_trace_capture() {
    *TRACE_CAPTURE.lock().unwrap() = TraceCapture::Armed;
}

/// Takes the trace captured since [`arm_trace_capture`], if any pool was
/// created while armed, and disarms.
pub fn take_captured_trace() -> Option<Trace> {
    match std::mem::replace(&mut *TRACE_CAPTURE.lock().unwrap(), TraceCapture::Off) {
        TraceCapture::Capturing(tracer) => Some(tracer.take()),
        _ => None,
    }
}

/// Creates a performance-mode pool and runtime for the given backend.
pub fn make_runtime(backend: Backend, scale: Scale) -> (Arc<PmemPool>, Arc<Runtime>) {
    let pool =
        Arc::new(PmemPool::create(PoolOptions::performance(scale.pool_bytes())).expect("pool"));
    {
        let mut cap = TRACE_CAPTURE.lock().unwrap();
        if matches!(*cap, TraceCapture::Armed) {
            let tracer = Arc::new(Tracer::with_capacity(1 << 20));
            pool.set_tracer(Some(tracer.clone()));
            *cap = TraceCapture::Capturing(tracer);
        }
    }
    let rt =
        Arc::new(Runtime::create(pool.clone(), RuntimeOptions::new(backend)).expect("runtime"));
    (pool, rt)
}

/// The four benchmark data structures of the paper's §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsKind {
    /// 256-rwlock-bucket hash map.
    Hashmap,
    /// 32-level skiplist, global lock.
    Skiplist,
    /// Red-black tree, global rwlock.
    Rbtree,
    /// B+Tree, per-leaf locks, 32-byte keys.
    Bptree,
}

impl DsKind {
    /// All four, in the paper's figure order.
    pub fn all() -> [DsKind; 4] {
        [
            DsKind::Bptree,
            DsKind::Hashmap,
            DsKind::Skiplist,
            DsKind::Rbtree,
        ]
    }

    /// CSV label.
    pub fn label(&self) -> &'static str {
        match self {
            DsKind::Hashmap => "hashmap",
            DsKind::Skiplist => "skiplist",
            DsKind::Rbtree => "rbtree",
            DsKind::Bptree => "bptree",
        }
    }

    /// Value size per the paper (256 bytes everywhere).
    pub fn value_size(&self) -> usize {
        256
    }
}

/// A created instance of one of the benchmark structures.
#[derive(Debug, Clone, Copy)]
pub enum DsHandle {
    /// Hash map instance.
    H(HashMap),
    /// Skiplist instance.
    S(SkipList),
    /// Red-black tree instance.
    R(RbTree),
    /// B+Tree instance.
    B(BpTree),
}

impl DsHandle {
    /// Registers the structure's txfuncs and creates an instance.
    pub fn create(kind: DsKind, rt: &Runtime) -> DsHandle {
        match kind {
            DsKind::Hashmap => {
                HashMap::register(rt);
                DsHandle::H(HashMap::create(rt).expect("create"))
            }
            DsKind::Skiplist => {
                SkipList::register(rt);
                DsHandle::S(SkipList::create(rt).expect("create"))
            }
            DsKind::Rbtree => {
                RbTree::register(rt);
                DsHandle::R(RbTree::create(rt).expect("create"))
            }
            DsKind::Bptree => {
                BpTree::register(rt);
                DsHandle::B(BpTree::create(rt).expect("create"))
            }
        }
    }

    /// Executes `op` on logical-thread `slot`.
    pub fn exec(&self, rt: &Runtime, slot: usize, op: &KvOp) {
        match (self, op) {
            (DsHandle::H(h), KvOp::Insert { key, value } | KvOp::Update { key, value }) => {
                h.insert_on(rt, slot, *key, value).expect("insert")
            }
            (DsHandle::H(h), KvOp::Read { key }) => {
                h.get_on(rt, slot, *key).map(|_| ()).expect("get")
            }
            (DsHandle::S(s), KvOp::Insert { key, value } | KvOp::Update { key, value }) => {
                s.insert_on(rt, slot, *key, value).expect("insert")
            }
            (DsHandle::S(s), KvOp::Read { key }) => {
                s.get_on(rt, slot, *key).map(|_| ()).expect("get")
            }
            (DsHandle::R(t), KvOp::Insert { key, value } | KvOp::Update { key, value }) => {
                t.insert_on(rt, slot, *key, value).expect("insert")
            }
            (DsHandle::R(t), KvOp::Read { key }) => {
                t.get_on(rt, slot, *key).map(|_| ()).expect("get")
            }
            (DsHandle::B(t), KvOp::Insert { key, value } | KvOp::Update { key, value }) => {
                t.insert_on(rt, slot, &key32(*key), value).expect("insert")
            }
            (DsHandle::B(t), KvOp::Read { key }) => {
                t.get_u64_on(rt, slot, *key).map(|_| ()).expect("get")
            }
        }
    }

    /// The simulated-lock set for `op`, reflecting each structure's locking
    /// scheme (paper §5.2). Under the redo backend (Mnemosyne), code is
    /// parallelized by its transactional-memory model rather than the
    /// structure locks, so conflicts happen at key granularity.
    pub fn locks_for(&self, pool: &PmemPool, backend: Backend, op: &KvOp) -> Vec<LockRequest> {
        if backend == Backend::Redo {
            // Optimistic TM: conflicts only on the same key (plus a
            // structure-level shared lock to model commit-time arbitration).
            let key_lock = 0x7000_0000_0000_0000u64 ^ op.key().wrapping_mul(11);
            return vec![LockRequest::exclusive(key_lock)];
        }
        match self {
            DsHandle::H(h) => {
                let l = h.lock_of(op.key());
                if op.is_write() {
                    vec![LockRequest::exclusive(l)]
                } else {
                    vec![LockRequest::shared(l)]
                }
            }
            DsHandle::S(s) => vec![if op.is_write() {
                LockRequest::exclusive(s.lock())
            } else {
                LockRequest::shared(s.lock())
            }],
            DsHandle::R(t) => vec![if op.is_write() {
                LockRequest::exclusive(t.lock())
            } else {
                LockRequest::shared(t.lock())
            }],
            DsHandle::B(t) => {
                let (leaf, full, parent) = t
                    .locate_leaf_path(pool, &key32(op.key()))
                    .expect("locate leaf");
                if op.is_write() {
                    if full {
                        // Hand-over-hand split: leaf plus its parent (the
                        // tree lock only when splitting the root itself).
                        let upper = match parent {
                            Some(p) => t.leaf_lock(p),
                            None => t.smo_lock(),
                        };
                        vec![
                            LockRequest::exclusive(t.leaf_lock(leaf)),
                            LockRequest::exclusive(upper),
                        ]
                    } else {
                        vec![LockRequest::exclusive(t.leaf_lock(leaf))]
                    }
                } else {
                    vec![LockRequest::shared(t.leaf_lock(leaf))]
                }
            }
        }
    }
}

/// DES op source feeding per-thread YCSB streams into a data structure.
pub struct DsOpSource {
    handle: DsHandle,
    rt: Arc<Runtime>,
    backend: Backend,
    ops: Vec<VecDeque<KvOp>>,
    cost: CostModel,
}

impl DsOpSource {
    /// Splits a YCSB workload round-robin over `threads` logical threads.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        handle: DsHandle,
        rt: Arc<Runtime>,
        backend: Backend,
        kind: WorkloadKind,
        total_ops: u64,
        value_size: usize,
        threads: usize,
        seed: u64,
    ) -> DsOpSource {
        let mut ops: Vec<VecDeque<KvOp>> = (0..threads).map(|_| VecDeque::new()).collect();
        for (i, op) in Workload::new(kind, total_ops, value_size, seed).enumerate() {
            ops[i % threads].push_back(op);
        }
        DsOpSource {
            handle,
            rt,
            backend,
            ops,
            cost: CostModel::optane(),
        }
    }
}

impl OpSource for DsOpSource {
    fn next_op(&mut self, thread: usize) -> Option<SimOp> {
        let op = self.ops[thread].pop_front()?;
        let locks = self.handle.locks_for(self.rt.pool(), self.backend, &op);
        let handle = self.handle;
        let rt = self.rt.clone();
        let cost = self.cost;
        Some(SimOp {
            locks,
            execute: Box::new(move || {
                let before = rt.pool().stats().snapshot();
                handle.exec(&rt, thread, &op);
                let delta = rt.pool().stats().snapshot().delta(&before);
                cost.op_cost(&delta)
            }),
        })
    }
}

/// Per-transaction averages computed from a stats delta.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerTx {
    /// Log entries (clobber/undo/redo) per transaction.
    pub log_entries: f64,
    /// Log bytes per transaction.
    pub log_bytes: f64,
    /// v_log entries per transaction.
    pub vlog_entries: f64,
    /// v_log bytes per transaction.
    pub vlog_bytes: f64,
    /// Ordering fences per transaction.
    pub fences: f64,
    /// Flushes per transaction.
    pub flushes: f64,
}

impl PerTx {
    /// Averages `delta` over `n` transactions.
    pub fn from_delta(delta: &StatsSnapshot, n: u64) -> PerTx {
        let n = n.max(1) as f64;
        PerTx {
            log_entries: delta.log_entries as f64 / n,
            log_bytes: delta.log_bytes as f64 / n,
            vlog_entries: delta.vlog_entries as f64 / n,
            vlog_bytes: delta.vlog_bytes as f64 / n,
            fences: delta.fences as f64 / n,
            flushes: delta.flushes as f64 / n,
        }
    }

    /// Total log entries (log + v_log).
    pub fn total_entries(&self) -> f64 {
        self.log_entries + self.vlog_entries
    }

    /// Total log bytes (log + v_log).
    pub fn total_bytes(&self) -> f64 {
        self.log_bytes + self.vlog_bytes
    }

    /// Bytes persisted *to the log region* per transaction: payload plus
    /// the per-entry metadata (address/length/checksum) every log write
    /// carries — the apples-to-apples quantity for cross-system byte
    /// comparisons.
    pub fn persisted_log_bytes(&self) -> f64 {
        self.total_bytes() + self.log_entries * clobber_pmem::ulog::ENTRY_OVERHEAD as f64
    }
}

/// Writes CSV rows (with a header line) to `path`.
///
/// # Errors
///
/// Returns I/O errors from file creation or writing.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clobber_sim::run_des;

    #[test]
    fn ds_op_source_drives_every_structure() {
        for kind in DsKind::all() {
            let (pool, rt) = make_runtime(Backend::clobber(), Scale::Quick);
            let handle = DsHandle::create(kind, &rt);
            let mut src = DsOpSource::new(
                handle,
                rt.clone(),
                Backend::clobber(),
                WorkloadKind::Load,
                64,
                64,
                2,
                1,
            );
            let result = run_des(2, &mut src);
            assert_eq!(result.total_ops, 64, "{}", kind.label());
            assert!(result.makespan_ns > 0);
            let _ = pool;
        }
    }

    #[test]
    fn global_lock_structures_do_not_scale() {
        // Skiplist inserts under a global lock: 4 threads must not beat 1
        // thread by more than bookkeeping noise.
        let run = |threads: usize| {
            let (_pool, rt) = make_runtime(Backend::clobber(), Scale::Quick);
            let handle = DsHandle::create(DsKind::Skiplist, &rt);
            let mut src = DsOpSource::new(
                handle,
                rt.clone(),
                Backend::clobber(),
                WorkloadKind::Load,
                128,
                64,
                threads,
                2,
            );
            run_des(threads, &mut src).throughput_ops_per_sec()
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(t4 < t1 * 1.3, "global lock must serialize: {t1} vs {t4}");
    }

    #[test]
    fn bucketed_hashmap_scales() {
        let run = |threads: usize| {
            let (_pool, rt) = make_runtime(Backend::clobber(), Scale::Quick);
            let handle = DsHandle::create(DsKind::Hashmap, &rt);
            let mut src = DsOpSource::new(
                handle,
                rt.clone(),
                Backend::clobber(),
                WorkloadKind::Load,
                512,
                64,
                threads,
                3,
            );
            run_des(threads, &mut src).throughput_ops_per_sec()
        };
        let t1 = run(1);
        let t8 = run(8);
        assert!(
            t8 > t1 * 3.0,
            "256 buckets should let 8 threads overlap: {t1} vs {t8}"
        );
    }

    #[test]
    fn per_tx_averages() {
        let d = StatsSnapshot {
            log_entries: 10,
            log_bytes: 80,
            vlog_entries: 5,
            vlog_bytes: 100,
            fences: 20,
            flushes: 40,
            ..Default::default()
        };
        let p = PerTx::from_delta(&d, 5);
        assert_eq!(p.log_entries, 2.0);
        assert_eq!(p.total_entries(), 3.0);
        assert_eq!(p.total_bytes(), 36.0);
    }
}
