//! Fig. 14: compile-time overhead of the Clobber-NVM passes.
//!
//! The paper compares Clobber-NVM's instrumenting compiler against plain
//! Clang (≈29 % extra on the data structures, ~55 % on memcached). Here the
//! front-end baseline is IR validation + CFG construction, and the
//! Clobber-NVM addition is dominators + alias analysis + identification +
//! refinement; both are measured per corpus program and on synthetic
//! transactions of growing size.

use std::time::Instant;

use clobber_txir::pipeline::{compile, CompileOptions};
use clobber_txir::programs;

/// One compile-time measurement (medians over `REPS` runs).
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub program: String,
    /// Instructions in the program.
    pub instructions: usize,
    /// Front-end time (validation + CFG), nanoseconds.
    pub frontend_ns: u64,
    /// Added pass time, nanoseconds.
    pub passes_ns: u64,
    /// Overhead percentage of the full pipeline over the front end.
    pub overhead_pct: f64,
}

/// CSV header.
pub const HEADER: &str = "program,instructions,frontend_ns,passes_ns,overhead_pct";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{:.0}",
            self.program, self.instructions, self.frontend_ns, self.passes_ns, self.overhead_pct
        )
    }
}

const REPS: usize = 15;

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Compiles one function `REPS` times and reports median phase times.
pub fn run_program(name: &str, f: clobber_txir::Function) -> Row {
    let instructions = f.insts.len();
    let mut fe = Vec::with_capacity(REPS);
    let mut ps = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let c = compile(f.clone(), CompileOptions::default()).expect("compile");
        fe.push(c.timing.frontend_ns.max(1));
        ps.push(c.timing.passes_ns);
    }
    let frontend_ns = median(fe);
    let passes_ns = median(ps);
    Row {
        program: name.to_string(),
        instructions,
        frontend_ns,
        passes_ns,
        overhead_pct: passes_ns as f64 / frontend_ns as f64 * 100.0,
    }
}

/// Warm-up compile so lazy allocator effects do not skew the first row.
fn warm_up() {
    let _ = compile(programs::counter_bump(), CompileOptions::default());
}

/// Runs the corpus plus synthetic scaling sizes.
pub fn run() -> Vec<Row> {
    warm_up();
    let mut rows: Vec<Row> = programs::corpus()
        .into_iter()
        .map(|p| {
            let name = p.function.name.clone();
            run_program(&name, p.function)
        })
        .collect();
    for n in [16usize, 64, 256] {
        rows.push(run_program(
            &format!("synthetic-{n}"),
            programs::synthetic_rmw_chain(n),
        ));
    }
    rows
}

/// Total wall time of compiling the whole corpus once (sanity metric).
pub fn corpus_compile_wall_ns() -> u64 {
    let t = Instant::now();
    for p in programs::corpus() {
        let _ = compile(p.function, CompileOptions::default()).expect("compile");
    }
    t.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_program_reports_phase_times() {
        let rows = run();
        assert!(rows.len() >= 10);
        for r in &rows {
            assert!(r.frontend_ns > 0, "{r:?}");
            assert!(r.instructions > 0, "{r:?}");
        }
    }

    #[test]
    fn synthetic_sizes_scale_pass_time() {
        let rows = run();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.program == name)
                .map(|r| r.passes_ns)
                .expect("row")
        };
        // Quadratic-ish pass over 16x more instructions must cost clearly
        // more; exact ratios vary with the machine.
        assert!(get("synthetic-256") > get("synthetic-16"));
    }

    #[test]
    fn corpus_compiles_quickly() {
        // The whole corpus should compile in well under a second — these
        // are small transactions, as in the paper.
        assert!(corpus_compile_wall_ns() < 1_000_000_000);
    }
}
