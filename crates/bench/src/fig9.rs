//! Fig. 9: recovery overhead, Clobber-NVM vs PMDK.
//!
//! The benchmark crashes an insert stream at a random (seeded) point inside
//! a transaction, reopens the pool and recovers. Recovery cost =
//! pool-management cost (dominant, per the paper: "most of their recovery
//! latency is spent on pool managements") + log application + (clobber
//! only) re-execution, with the non-open components converted from counted
//! events by the cost model.

use std::sync::{Arc, Mutex};

use clobber_nvm::{Backend, Runtime, RuntimeOptions};
use clobber_pmem::{CrashConfig, PmemPool, PoolMode, PoolOptions};
use clobber_sim::CostModel;
use clobber_workloads::{Workload, WorkloadKind};

use crate::common::{DsHandle, DsKind, Scale};

/// Modeled pool-open cost: PMDK pool open/validation on Optane is on the
/// order of a millisecond; both systems pay it identically.
pub const POOL_OPEN_NS: u64 = 1_200_000;

/// One recovery measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// System label (clobber/pmdk).
    pub system: &'static str,
    /// Structure label.
    pub structure: &'static str,
    /// Modeled pool-open nanoseconds.
    pub open_ns: u64,
    /// Log-application + re-execution nanoseconds (modeled from events).
    pub apply_ns: u64,
    /// Log entries applied during recovery.
    pub entries_applied: u64,
    /// Transactions re-executed (clobber) or rolled back (pmdk).
    pub recovered_txs: u64,
}

/// CSV header.
pub const HEADER: &str = "system,structure,open_ns,apply_ns,total_ns,entries_applied,recovered_txs";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.system,
            self.structure,
            self.open_ns,
            self.apply_ns,
            self.open_ns + self.apply_ns,
            self.entries_applied,
            self.recovered_txs
        )
    }
}

/// Crashes an insert stream mid-transaction and measures recovery.
pub fn run_cell(kind: DsKind, backend: Backend, scale: Scale, seed: u64) -> Row {
    let pool = Arc::new(
        PmemPool::create(PoolOptions::crash_sim(scale.pool_bytes().min(256 << 20))).expect("pool"),
    );
    let rt = Runtime::create(pool.clone(), RuntimeOptions::new(backend)).expect("runtime");
    let handle = DsHandle::create(kind, &rt);
    let root = match handle {
        DsHandle::H(h) => h.root(),
        DsHandle::S(s) => s.root(),
        DsHandle::R(t) => t.root(),
        DsHandle::B(t) => t.root(),
    };
    rt.set_app_root(root).expect("root");

    // Arm a probe that captures a crash image at a pseudo-random write
    // late in the stream.
    let n = (scale.ds_ops() / 8).max(32);
    let crash_at = (seed % 37) + n * 2; // lands inside some mid-stream tx
    let image: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let countdown = Arc::new(Mutex::new(Some(crash_at)));
    let (img, cd) = (image.clone(), countdown.clone());
    rt.set_write_probe(Some(Arc::new(move |pool| {
        let mut c = cd.lock().unwrap();
        match *c {
            Some(0) => {
                let crashed = pool.crash(&CrashConfig::drop_all(seed)).expect("crash");
                *img.lock().unwrap() = Some(crashed.media_snapshot());
                *c = None; // disarm: crash capture is expensive
            }
            Some(n) => *c = Some(n - 1),
            None => {}
        }
    })));
    for op in Workload::new(WorkloadKind::Load, n, kind.value_size(), seed) {
        handle.exec(&rt, 0, &op);
    }
    let media = image.lock().unwrap().take().expect("probe fired");

    // Recover and meter the events it generates.
    let pool2 = Arc::new(PmemPool::open_from_media(media, PoolMode::CrashSim).expect("open"));
    let rt2 = Runtime::open(pool2.clone(), RuntimeOptions::new(backend)).expect("runtime");
    DsHandle::create_registry_only(kind, &rt2);
    let before = pool2.stats().snapshot();
    let report = rt2.recover().expect("recover");
    let delta = pool2.stats().snapshot().delta(&before);
    let cost = CostModel::optane();
    Row {
        system: if backend == Backend::Undo {
            "pmdk"
        } else {
            "clobber"
        },
        structure: kind.label(),
        open_ns: POOL_OPEN_NS,
        apply_ns: cost.op_cost(&delta),
        entries_applied: report.clobber_entries_applied + delta.log_entries,
        recovered_txs: (report.reexecuted.len() + report.rolled_back) as u64,
    }
}

impl DsHandle {
    /// Registers txfuncs without creating a new instance (recovery path).
    pub fn create_registry_only(kind: DsKind, rt: &Runtime) {
        match kind {
            DsKind::Hashmap => clobber_pds::HashMap::register(rt),
            DsKind::Skiplist => clobber_pds::SkipList::register(rt),
            DsKind::Rbtree => clobber_pds::RbTree::register(rt),
            DsKind::Bptree => clobber_pds::BpTree::register(rt),
        }
    }
}

/// Runs the full figure: both systems over all structures.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in DsKind::all() {
        for backend in [Backend::clobber(), Backend::Undo] {
            rows.push(run_cell(kind, backend, scale, 977));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_is_dominated_by_pool_open() {
        // Paper: "the recovery latency of Clobber-NVM and PMDK are similar;
        // most of their recovery latency is spent on pool managements".
        for row in run(Scale::Quick) {
            assert!(
                row.open_ns > row.apply_ns,
                "{}/{}: open {} vs apply {}",
                row.system,
                row.structure,
                row.open_ns,
                row.apply_ns
            );
        }
    }

    #[test]
    fn both_systems_recover_the_interrupted_tx() {
        for row in run(Scale::Quick) {
            assert_eq!(row.recovered_txs, 1, "{row:?}");
        }
    }

    #[test]
    fn totals_are_comparable_between_systems() {
        let rows = run(Scale::Quick);
        for kind in DsKind::all() {
            let get = |sys: &str| {
                rows.iter()
                    .find(|r| r.structure == kind.label() && r.system == sys)
                    .map(|r| (r.open_ns + r.apply_ns) as f64)
                    .unwrap()
            };
            let (c, p) = (get("clobber"), get("pmdk"));
            let ratio = c.max(p) / c.min(p);
            assert!(ratio < 2.0, "{}: clobber {c} vs pmdk {p}", kind.label());
        }
    }
}
