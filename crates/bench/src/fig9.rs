//! Fig. 9: recovery overhead, Clobber-NVM vs PMDK.
//!
//! The benchmark crashes an insert stream at a random (seeded) point inside
//! a transaction, reopens the pool and recovers. Recovery cost =
//! pool-management cost (dominant, per the paper: "most of their recovery
//! latency is spent on pool managements") + log application + (clobber
//! only) re-execution, with the non-open components converted from counted
//! events by the cost model.

use std::sync::{Arc, Barrier, Mutex};

use clobber_nvm::{ArgList, Backend, RecoveryOptions, Runtime, RuntimeOptions};
use clobber_pmem::{CrashConfig, PAddr, PmemPool, PoolMode, PoolOptions};
use clobber_sim::CostModel;
use clobber_workloads::{Workload, WorkloadKind};

use crate::common::{DsHandle, DsKind, Scale};

/// Modeled pool-open cost: PMDK pool open/validation on Optane is on the
/// order of a millisecond; both systems pay it identically.
pub const POOL_OPEN_NS: u64 = 1_200_000;

/// One recovery measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// System label (clobber/pmdk).
    pub system: &'static str,
    /// Structure label.
    pub structure: &'static str,
    /// Modeled pool-open nanoseconds.
    pub open_ns: u64,
    /// Log-application + re-execution nanoseconds (modeled from events).
    pub apply_ns: u64,
    /// Log entries applied during recovery.
    pub entries_applied: u64,
    /// Transactions re-executed (clobber) or rolled back (pmdk).
    pub recovered_txs: u64,
}

/// CSV header.
pub const HEADER: &str = "system,structure,open_ns,apply_ns,total_ns,entries_applied,recovered_txs";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.system,
            self.structure,
            self.open_ns,
            self.apply_ns,
            self.open_ns + self.apply_ns,
            self.entries_applied,
            self.recovered_txs
        )
    }
}

/// Crashes an insert stream mid-transaction and measures recovery.
pub fn run_cell(kind: DsKind, backend: Backend, scale: Scale, seed: u64) -> Row {
    let pool = Arc::new(
        PmemPool::create(PoolOptions::crash_sim(scale.pool_bytes().min(256 << 20))).expect("pool"),
    );
    let rt = Runtime::create(pool.clone(), RuntimeOptions::new(backend)).expect("runtime");
    let handle = DsHandle::create(kind, &rt);
    let root = match handle {
        DsHandle::H(h) => h.root(),
        DsHandle::S(s) => s.root(),
        DsHandle::R(t) => t.root(),
        DsHandle::B(t) => t.root(),
    };
    rt.set_app_root(root).expect("root");

    // Arm a probe that captures a crash image at a pseudo-random write
    // late in the stream.
    let n = (scale.ds_ops() / 8).max(32);
    let crash_at = (seed % 37) + n * 2; // lands inside some mid-stream tx
    let image: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let countdown = Arc::new(Mutex::new(Some(crash_at)));
    let (img, cd) = (image.clone(), countdown.clone());
    rt.set_write_probe(Some(Arc::new(move |pool| {
        let mut c = cd.lock().unwrap();
        match *c {
            Some(0) => {
                let crashed = pool.crash(&CrashConfig::drop_all(seed)).expect("crash");
                *img.lock().unwrap() = Some(crashed.media_snapshot());
                *c = None; // disarm: crash capture is expensive
            }
            Some(n) => *c = Some(n - 1),
            None => {}
        }
    })));
    for op in Workload::new(WorkloadKind::Load, n, kind.value_size(), seed) {
        handle.exec(&rt, 0, &op);
    }
    let media = image.lock().unwrap().take().expect("probe fired");

    // Recover and meter the events it generates.
    let pool2 = Arc::new(PmemPool::open_from_media(media, PoolMode::CrashSim).expect("open"));
    let rt2 = Runtime::open(pool2.clone(), RuntimeOptions::new(backend)).expect("runtime");
    DsHandle::create_registry_only(kind, &rt2);
    let before = pool2.stats().snapshot();
    let report = rt2.recover().expect("recover");
    let delta = pool2.stats().snapshot().delta(&before);
    let cost = CostModel::optane();
    Row {
        system: if backend == Backend::Undo {
            "pmdk"
        } else {
            "clobber"
        },
        structure: kind.label(),
        open_ns: POOL_OPEN_NS,
        apply_ns: cost.op_cost(&delta),
        entries_applied: report.clobber_entries_applied + delta.log_entries,
        recovered_txs: (report.reexecuted.len() + report.rolled_back) as u64,
    }
}

impl DsHandle {
    /// Registers txfuncs without creating a new instance (recovery path).
    pub fn create_registry_only(kind: DsKind, rt: &Runtime) {
        match kind {
            DsKind::Hashmap => clobber_pds::HashMap::register(rt),
            DsKind::Skiplist => clobber_pds::SkipList::register(rt),
            DsKind::Rbtree => clobber_pds::RbTree::register(rt),
            DsKind::Bptree => clobber_pds::BpTree::register(rt),
        }
    }
}

/// Cells each parked scaling transaction mutates (its share of the live
/// data recovery must repair).
const SCALING_CELLS: u64 = 8;

/// One recovery-scaling measurement: `slots` interrupted transactions in a
/// `pool_mib`-MiB pool, recovered by `workers` scan threads.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Pool size in MiB (the *dead* dimension — recovery must not scan it).
    pub pool_mib: u64,
    /// Interrupted transactions (the live dimension).
    pub slots: usize,
    /// Scan threads requested.
    pub workers: usize,
    /// Modeled log-application + re-execution nanoseconds.
    pub apply_ns: u64,
    /// Measured wall-clock nanoseconds of the scan itself.
    pub wall_ns: u64,
    /// Clobber-log entries applied restoring inputs.
    pub entries_applied: u64,
    /// Transactions completed by re-execution.
    pub reexecuted: usize,
}

/// CSV header for the scaling table.
pub const SCALING_HEADER: &str =
    "pool_mib,slots,workers,open_ns,apply_ns,total_ns,wall_ns,entries_applied,reexecuted";

impl ScalingRow {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{}",
            self.pool_mib,
            self.slots,
            self.workers,
            POOL_OPEN_NS,
            self.apply_ns,
            POOL_OPEN_NS + self.apply_ns,
            self.wall_ns,
            self.entries_applied,
            self.reexecuted
        )
    }
}

/// Small per-slot log buffers so the 1 MiB scaling pools hold every slot
/// (each chain logs `SCALING_CELLS` 8-byte entries — 8 KiB is generous).
fn scaling_rt_opts() -> RuntimeOptions {
    let mut opts = RuntimeOptions::default();
    opts.clobber_log_cap = 8 << 10;
    opts.redo_log_cap = 8 << 10;
    opts
}

/// Parks `slots` concurrent chain transactions (one per v_log slot, each
/// mid-flight after `SCALING_CELLS` logged read-modify-writes), crashes the
/// pool adversarially, and measures the recovery scan with `workers`
/// threads. Live data scales with `slots`; the pool size scales with
/// `pool_mib`; recovery cost must track the former.
pub fn run_scaling_cell(pool_mib: u64, slots: usize, workers: usize, seed: u64) -> ScalingRow {
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(pool_mib << 20)).expect("pool"));
    let rt = Runtime::create(pool.clone(), scaling_rt_opts()).expect("runtime");
    let cells = SCALING_CELLS * slots as u64;
    let base = pool.alloc(8 * cells).expect("alloc");
    for i in 0..cells {
        pool.write_u64(base.add(8 * i), 1_000).expect("seed");
    }
    pool.persist(base, 8 * cells).expect("persist");
    rt.set_app_root(base).expect("root");

    let rendezvous = Arc::new(Barrier::new(slots + 1));
    let release = Arc::new(Barrier::new(slots + 1));
    {
        let (rendezvous, release) = (rendezvous.clone(), release.clone());
        rt.register("scaling_chain", move |tx, args| {
            let base = PAddr::new(args.u64(0)?);
            let lo = args.u64(1)?;
            for i in lo..lo + SCALING_CELLS {
                let v = tx.read_u64(base.add(8 * i))?;
                tx.write_u64(base.add(8 * i), v + i + 1)?;
            }
            rendezvous.wait(); // all writes logged and in flight
            release.wait(); // hold until the snapshot is taken
            Ok(None)
        });
    }
    let mut media = None;
    std::thread::scope(|s| {
        for slot in 0..slots {
            let rt = &rt;
            let args = ArgList::new()
                .with_u64(base.offset())
                .with_u64(SCALING_CELLS * slot as u64);
            s.spawn(move || {
                rt.run_on(slot, "scaling_chain", &args).unwrap();
            });
        }
        rendezvous.wait();
        media = Some(
            pool.crash(&CrashConfig::drop_all(seed))
                .expect("crash")
                .media_snapshot(),
        );
        release.wait();
    });

    let pool2 =
        Arc::new(PmemPool::open_from_media(media.unwrap(), PoolMode::CrashSim).expect("open"));
    let rt2 = Runtime::open(pool2.clone(), scaling_rt_opts()).expect("runtime");
    rt2.register("scaling_chain", |tx, args| {
        let base = PAddr::new(args.u64(0)?);
        let lo = args.u64(1)?;
        for i in lo..lo + SCALING_CELLS {
            let v = tx.read_u64(base.add(8 * i))?;
            tx.write_u64(base.add(8 * i), v + i + 1)?;
        }
        Ok(None)
    });
    let before = pool2.stats().snapshot();
    let report = rt2
        .recover_with(&RecoveryOptions::default().with_workers(workers))
        .expect("recover");
    let delta = pool2.stats().snapshot().delta(&before);
    ScalingRow {
        pool_mib,
        slots,
        workers,
        apply_ns: CostModel::optane().op_cost(&delta),
        wall_ns: report.wall_time.as_nanos() as u64,
        entries_applied: report.clobber_entries_applied,
        reexecuted: report.reexecuted.len(),
    }
}

/// Runs the scaling table: pool size × interrupted slots × scan workers.
pub fn run_scaling() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for pool_mib in [1u64, 4, 16] {
        for slots in [1usize, 4] {
            for workers in [1usize, 4] {
                rows.push(run_scaling_cell(pool_mib, slots, workers, 53));
            }
        }
    }
    rows
}

/// Runs the full figure: both systems over all structures.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in DsKind::all() {
        for backend in [Backend::clobber(), Backend::Undo] {
            rows.push(run_cell(kind, backend, scale, 977));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_is_dominated_by_pool_open() {
        // Paper: "the recovery latency of Clobber-NVM and PMDK are similar;
        // most of their recovery latency is spent on pool managements".
        for row in run(Scale::Quick) {
            assert!(
                row.open_ns > row.apply_ns,
                "{}/{}: open {} vs apply {}",
                row.system,
                row.structure,
                row.open_ns,
                row.apply_ns
            );
        }
    }

    #[test]
    fn both_systems_recover_the_interrupted_tx() {
        for row in run(Scale::Quick) {
            assert_eq!(row.recovered_txs, 1, "{row:?}");
        }
    }

    #[test]
    fn recovery_cost_is_live_data_bound_not_pool_bound() {
        // Fixed live data, 16x pool growth: the modeled scan cost must not
        // grow with the pool — recovery walks the slot list, not the heap.
        let small = run_scaling_cell(1, 2, 1, 53);
        let large = run_scaling_cell(16, 2, 1, 53);
        assert_eq!(small.reexecuted, 2);
        assert_eq!(large.reexecuted, 2);
        assert!(
            (large.apply_ns as f64) <= (small.apply_ns as f64) * 1.1,
            "pool-bound recovery: 1 MiB -> {} ns, 16 MiB -> {} ns",
            small.apply_ns,
            large.apply_ns
        );
        // 4x the live data in the same pool must cost measurably more.
        let loaded = run_scaling_cell(1, 4, 1, 53);
        assert!(
            loaded.apply_ns > small.apply_ns,
            "live-data growth invisible: {} vs {}",
            loaded.apply_ns,
            small.apply_ns
        );
    }

    #[test]
    fn parallel_scaling_scan_matches_serial_outcome() {
        let serial = run_scaling_cell(4, 4, 1, 53);
        let parallel = run_scaling_cell(4, 4, 4, 53);
        assert_eq!(serial.reexecuted, 4);
        assert_eq!(parallel.reexecuted, 4);
        assert_eq!(serial.entries_applied, parallel.entries_applied);
    }

    #[test]
    fn totals_are_comparable_between_systems() {
        let rows = run(Scale::Quick);
        for kind in DsKind::all() {
            let get = |sys: &str| {
                rows.iter()
                    .find(|r| r.structure == kind.label() && r.system == sys)
                    .map(|r| (r.open_ns + r.apply_ns) as f64)
                    .unwrap()
            };
            let (c, p) = (get("clobber"), get("pmdk"));
            let ratio = c.max(p) / c.min(p);
            assert!(ratio < 2.0, "{}: clobber {c} vs pmdk {p}", kind.label());
        }
    }
}
