//! Experiment harness for the Clobber-NVM reproduction.
//!
//! One module per evaluation figure (paper §5); each exposes `run(scale)`
//! returning typed rows plus a CSV shape matching the original artifact's
//! `fig*.csv` outputs. The `repro` binary sweeps everything at full scale;
//! the Criterion benches exercise each figure at quick scale.
//!
//! | Module | Paper figure |
//! |---|---|
//! | [`fig6`] | data-structure throughput vs threads |
//! | [`fig7`] | logging-strategy breakdown |
//! | [`fig8`] | iDO vs Clobber log traffic |
//! | [`fig9`] | recovery overhead |
//! | [`fig10`] | memcached-like server throughput |
//! | [`fig11`] | vacation, rbtree vs avltree |
//! | [`fig12`] | yada angle sweep |
//! | [`fig13`] | refinement-pass effectiveness |
//! | [`fig14`] | compile-time overhead |
//! | [`fig_kv_scale`] | networked service: clients vs throughput/tail latency |

#![warn(missing_docs)]

pub mod common;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fig_kv_scale;

pub use common::{write_csv, Scale};
