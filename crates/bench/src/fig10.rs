//! Fig. 10: memcached-like server throughput across workload mixes and
//! threads.
//!
//! memslap-style streams (16-byte keys, 64-byte values) over four mixes
//! from insertion-intensive (95 % set) to search-intensive (5 % set),
//! systems {Clobber-NVM, PMDK, Mnemosyne}. The paper's claims: Clobber-NVM
//! wins everywhere, by more on insert-heavy mixes; Mnemosyne's longer read
//! path hurts it on search-heavy mixes; bucket rwlocks scale search-heavy
//! mixes best while spinlocks favor insert-heavy ones.

use clobber_apps::kvserver::{KvOpSource, KvServer, LockScheme};
use clobber_nvm::Backend;
use clobber_sim::{run_des, CostModel};
use clobber_workloads::Mix;

use crate::common::{make_runtime, Scale};

/// One throughput measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// System label.
    pub system: &'static str,
    /// Mix label.
    pub mix: &'static str,
    /// Lock scheme label.
    pub locks: &'static str,
    /// Logical threads.
    pub threads: usize,
    /// Simulated throughput in requests per second.
    pub throughput: f64,
}

/// CSV header.
pub const HEADER: &str = "system,mix,locks,threads,throughput_req_per_sec";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{:.0}",
            self.system, self.mix, self.locks, self.threads, self.throughput
        )
    }
}

/// Runs one cell.
pub fn run_cell(
    backend: Backend,
    mix: Mix,
    scheme: LockScheme,
    threads: usize,
    scale: Scale,
) -> Row {
    let (_pool, rt) = make_runtime(backend, scale);
    let server = KvServer::create(&rt, scheme).expect("server");
    let per_thread = scale.kv_ops() / threads as u64;
    let mut src = KvOpSource::new(
        server,
        rt.clone(),
        threads,
        mix,
        per_thread,
        10_000,
        99,
        CostModel::optane(),
    );
    let result = run_des(threads, &mut src);
    Row {
        system: backend.label(),
        mix: mix.label(),
        locks: scheme.label(),
        threads,
        throughput: result.throughput_ops_per_sec(),
    }
}

/// Runs the full figure: mixes × systems × threads, rwlock scheme (the
/// paper's scalable configuration), plus a spinlock column at the highest
/// thread count for the lock-scheme comparison.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    let systems = [Backend::clobber(), Backend::Undo, Backend::Redo];
    for mix in Mix::all() {
        for backend in systems {
            for &threads in &scale.threads() {
                rows.push(run_cell(backend, mix, LockScheme::BucketRw, threads, scale));
            }
            let max_t = *scale.threads().last().expect("thread list");
            rows.push(run_cell(backend, mix, LockScheme::BucketSpin, max_t, scale));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick-scale rows computed once and shared by all tests in this
    /// module (the sweep is the expensive part).
    fn cached_rows() -> &'static [Row] {
        static ROWS: std::sync::OnceLock<Vec<Row>> = std::sync::OnceLock::new();
        ROWS.get_or_init(|| run(Scale::Quick))
    }

    fn get(rows: &[Row], system: &str, mix: &str, locks: &str, threads: usize) -> f64 {
        rows.iter()
            .find(|r| {
                r.system == system && r.mix == mix && r.locks == locks && r.threads == threads
            })
            .map(|r| r.throughput)
            .expect("row")
    }

    #[test]
    fn clobber_wins_every_mix_single_thread() {
        let rows = cached_rows();
        for mix in Mix::all() {
            let c = get(rows, "clobber", mix.label(), "rwlock", 1);
            let p = get(rows, "pmdk", mix.label(), "rwlock", 1);
            let m = get(rows, "mnemosyne", mix.label(), "rwlock", 1);
            assert!(c > p, "{}: clobber {c:.0} vs pmdk {p:.0}", mix.label());
            assert!(c > m, "{}: clobber {c:.0} vs mnemosyne {m:.0}", mix.label());
        }
    }

    #[test]
    fn gains_shrink_on_search_heavy_mixes() {
        // Paper: Clobber-NVM outperforms more on insert-intensive mixes.
        let rows = cached_rows();
        let gain = |mix: &str| {
            get(rows, "clobber", mix, "rwlock", 1) / get(rows, "pmdk", mix, "rwlock", 1)
        };
        assert!(
            gain("insert95") > gain("search95"),
            "insert gain {:.2} vs search gain {:.2}",
            gain("insert95"),
            gain("search95")
        );
    }

    #[test]
    fn mnemosyne_read_path_hurts_searches() {
        // Paper: "the longer read path of redo-log based systems results in
        // lower performance of Mnemosyne" on search-heavy mixes.
        let rows = cached_rows();
        let m = get(rows, "mnemosyne", "search95", "rwlock", 1);
        let p = get(rows, "pmdk", "search95", "rwlock", 1);
        assert!(m < p, "mnemosyne {m:.0} vs pmdk {p:.0}");
    }

    #[test]
    fn rwlock_scales_search_heavy_mixes() {
        let rows = cached_rows();
        let threads = *Scale::Quick.threads().last().unwrap();
        let rw = get(rows, "clobber", "search95", "rwlock", threads);
        let spin = get(rows, "clobber", "search95", "spinlock", threads);
        assert!(
            rw >= spin * 0.95,
            "readers should share: rwlock {rw:.0} vs spinlock {spin:.0}"
        );
    }
}
