//! Regenerates every table and figure of the Clobber-NVM evaluation.
//!
//! ```text
//! repro [fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig_kv_scale|all] \
//!       [--quick] [--out DIR] [--trace-out PATH] [--zipf THETA] [--seed N]
//! ```
//!
//! Each experiment writes `fig*.csv` into the output directory (default:
//! the current directory) and prints a summary table, mirroring the
//! original artifact's `run_all.sh` behaviour (paper Appendix A.5).
//!
//! `--trace-out PATH` additionally records the persist-event trace of each
//! selected figure's first runtime (fig6/fig7/fig10/fig11 only) and writes
//! it as Chrome trace-event JSON — load it in Perfetto or
//! `chrome://tracing`. The figure label is inserted before the extension:
//! `--trace-out t.json` with fig6 writes `t-fig6.json`.

use std::path::PathBuf;
use std::time::Instant;

use clobber_bench::{common::Scale, write_csv};
use clobber_bench::{fig10, fig11, fig12, fig13, fig14, fig6, fig7, fig8, fig9, fig_kv_scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from(".");
    let mut trace_out: Option<PathBuf> = None;
    // Knobs for the request-stream generator (fig_kv_scale): zipf skew
    // theta and the base RNG seed (client `c` streams with `seed + c`).
    let mut zipf = 0.99f64;
    let mut seed = 42u64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--zipf" => {
                zipf = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--zipf requires a theta in (0, 1), or 0 for uniform");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an unsigned integer");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }))
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--trace-out requires a path");
                    std::process::exit(2);
                })))
            }
            "all" => which = all_figures(),
            other if other.starts_with("fig") => which.push(other.to_string()),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: repro [fig6..fig14|fig_kv_scale|all] [--quick] [--out DIR] \
                     [--trace-out PATH] [--zipf THETA] [--seed N]"
                );
                std::process::exit(2);
            }
        }
    }
    if which.is_empty() {
        which = all_figures();
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    for fig in which {
        let t = Instant::now();
        println!("==> {fig} (scale: {scale:?})");
        let tracing = trace_out.is_some() && TRACEABLE.contains(&fig.as_str());
        if tracing {
            clobber_bench::common::arm_trace_capture();
        }
        run_one(&fig, scale, &out_dir, zipf, seed);
        if tracing {
            write_trace(&fig, trace_out.as_ref().unwrap());
        }
        println!("    done in {:.1}s\n", t.elapsed().as_secs_f64());
    }
}

/// Figures whose runners support `--trace-out`.
const TRACEABLE: [&str; 4] = ["fig6", "fig7", "fig10", "fig11"];

/// Writes the captured trace as Chrome JSON to `base` with the figure
/// label inserted before the extension (`t.json` -> `t-fig6.json`).
fn write_trace(fig: &str, base: &std::path::Path) {
    let Some(trace) = clobber_bench::common::take_captured_trace() else {
        eprintln!("    {fig}: no runtime was created, no trace captured");
        return;
    };
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("json");
    let path = base.with_file_name(format!("{stem}-{fig}.{ext}"));
    std::fs::write(&path, trace.to_chrome_json()).expect("write trace");
    println!(
        "    trace: {} events ({} dropped) -> {}",
        trace.events.len(),
        trace.dropped,
        path.display()
    );
}

fn all_figures() -> Vec<String> {
    let mut figs: Vec<String> = (6..=14).map(|i| format!("fig{i}")).collect();
    figs.push("fig_kv_scale".to_string());
    figs
}

fn run_one(fig: &str, scale: Scale, out: &std::path::Path, zipf: f64, seed: u64) {
    match fig {
        "fig6" => {
            let rows = fig6::run(scale);
            emit(out, "fig6.csv", fig6::HEADER, rows.iter().map(|r| r.csv()));
            // Paper-style summary: clobber-vs-pmdk speedups.
            for kind in clobber_bench::common::DsKind::all() {
                let pick = |sys: &str, t: usize| {
                    rows.iter()
                        .find(|r| r.system == sys && r.structure == kind.label() && r.threads == t)
                        .map(|r| r.throughput)
                        .unwrap_or(0.0)
                };
                println!(
                    "    {:<9} clobber/pmdk: {:.2}x @1t  clobber/atlas: {:.2}x @1t",
                    kind.label(),
                    pick("clobber", 1) / pick("pmdk", 1).max(1.0),
                    pick("clobber", 1) / pick("atlas", 1).max(1.0),
                );
            }
            // Real multi-thread Clobber series: racing OS threads through
            // the lock manager, costed by the DES model (EXPERIMENTS.md
            // explains the 1-CPU caveat).
            let mt = fig6::run_multithread(scale);
            emit(
                out,
                "fig6_mt.csv",
                fig6::MT_HEADER,
                mt.iter().map(|r| r.csv()),
            );
            for r in mt.iter().filter(|r| r.series == "per-node") {
                let gl = mt
                    .iter()
                    .find(|g| {
                        g.series == "global-lock"
                            && g.structure == r.structure
                            && g.threads == r.threads
                    })
                    .map(|g| g.throughput)
                    .unwrap_or(0.0);
                println!(
                    "    [mt] {:<9} {}t: per-node/global {:.2}x  fences/tx {:.2}  waits {}",
                    r.structure,
                    r.threads,
                    r.throughput / gl.max(1.0),
                    r.fences_per_tx,
                    r.lock_waits
                );
            }
        }
        "fig7" => {
            let rows = fig7::run(scale);
            emit(out, "fig7.csv", fig7::HEADER, rows.iter().map(|r| r.csv()));
            for (ds, entries, bytes) in fig7::paper_ratios(&rows) {
                println!(
                    "    {ds:<9} clobber entries = {:.1}% of pmdk;  pmdk bytes = {:.1}x clobber",
                    entries * 100.0,
                    bytes
                );
            }
        }
        "fig8" => {
            let rows = fig8::run(scale);
            emit(out, "fig8.csv", fig8::HEADER, rows.iter().map(|r| r.csv()));
            for r in &rows {
                println!(
                    "    {:<9} iDO/clobber: {:.1}x points, {:.1}x bytes",
                    r.structure,
                    r.ido_points / r.clobber_points.max(1e-9),
                    r.ido_bytes / r.clobber_bytes.max(1e-9)
                );
            }
        }
        "fig9" => {
            let rows = fig9::run(scale);
            emit(out, "fig9.csv", fig9::HEADER, rows.iter().map(|r| r.csv()));
            for r in &rows {
                println!(
                    "    {:<8} {:<9} total {:.2} ms (open {:.2} + apply {:.3})",
                    r.system,
                    r.structure,
                    (r.open_ns + r.apply_ns) as f64 / 1e6,
                    r.open_ns as f64 / 1e6,
                    r.apply_ns as f64 / 1e6
                );
            }
            let scaling = fig9::run_scaling();
            emit(
                out,
                "fig9_scaling.csv",
                fig9::SCALING_HEADER,
                scaling.iter().map(|r| r.csv()),
            );
            for r in &scaling {
                println!(
                    "    pool {:>2} MiB slots {} workers {}: apply {:.3} ms, wall {:.3} ms, {} entries",
                    r.pool_mib,
                    r.slots,
                    r.workers,
                    r.apply_ns as f64 / 1e6,
                    r.wall_ns as f64 / 1e6,
                    r.entries_applied
                );
            }
        }
        "fig10" => {
            let rows = fig10::run(scale);
            emit(
                out,
                "fig10.csv",
                fig10::HEADER,
                rows.iter().map(|r| r.csv()),
            );
            for mix in clobber_workloads::Mix::all() {
                let pick = |sys: &str| {
                    rows.iter()
                        .find(|r| {
                            r.system == sys
                                && r.mix == mix.label()
                                && r.locks == "rwlock"
                                && r.threads == 1
                        })
                        .map(|r| r.throughput)
                        .unwrap_or(0.0)
                };
                println!(
                    "    {:<9} clobber/pmdk {:.2}x  clobber/mnemosyne {:.2}x  @1t",
                    mix.label(),
                    pick("clobber") / pick("pmdk").max(1.0),
                    pick("clobber") / pick("mnemosyne").max(1.0)
                );
            }
        }
        "fig11" => {
            let rows = fig11::run(scale);
            emit(
                out,
                "fig11.csv",
                fig11::HEADER,
                rows.iter().map(|r| r.csv()),
            );
            for r in rows.iter().filter(|r| r.system != "nolog") {
                println!(
                    "    {:<10} {:<8} q={} overhead {:+.0}%",
                    r.system, r.tree, r.queries_per_task, r.overhead_pct
                );
            }
        }
        "fig12" => {
            let rows = fig12::run(scale);
            emit(
                out,
                "fig12.csv",
                fig12::HEADER,
                rows.iter().map(|r| r.csv()),
            );
            for r in &rows {
                println!(
                    "    angle {:>2}  {:<8} {:>9.2} ms  ({} steps, {} triangles, {:+.0}%)",
                    r.angle, r.system, r.elapsed_ms, r.steps, r.final_triangles, r.overhead_pct
                );
            }
        }
        "fig13" => {
            let rows = fig13::run(scale);
            emit(
                out,
                "fig13.csv",
                fig13::HEADER,
                rows.iter().map(|r| r.csv()),
            );
            let stat = fig13::run_static();
            emit(
                out,
                "fig13_static.csv",
                fig13::STATIC_HEADER,
                stat.iter().map(|r| r.csv()),
            );
            for r in &rows {
                println!(
                    "    {:<22} speedup {:+.1}%  extra entries {:+.0}%  extra bytes {:+.0}%",
                    r.workload, r.speedup_pct, r.extra_entries_pct, r.extra_bytes_pct
                );
            }
            for r in &stat {
                println!(
                    "    [static] {:<18} {} -> {} sites",
                    r.program, r.conservative_sites, r.refined_sites
                );
            }
        }
        "fig14" => {
            let rows = fig14::run();
            emit(
                out,
                "fig14.csv",
                fig14::HEADER,
                rows.iter().map(|r| r.csv()),
            );
            for r in &rows {
                println!(
                    "    {:<20} {:>4} insts  frontend {:>7} ns  passes {:>7} ns  ({:.0}%)",
                    r.program, r.instructions, r.frontend_ns, r.passes_ns, r.overhead_pct
                );
            }
        }
        "fig_kv_scale" => {
            let rows = fig_kv_scale::run(scale, zipf, seed);
            emit(
                out,
                "fig_kv_scale.csv",
                fig_kv_scale::HEADER,
                rows.iter().map(|r| r.csv()),
            );
            for r in rows.iter().filter(|r| r.mode == "batched") {
                let pr = rows
                    .iter()
                    .find(|p| p.mode == "per-request" && p.clients == r.clients)
                    .expect("per-request row");
                println!(
                    "    {:>2} clients: {:>9.0} rps  p99 {:>7} ns  fences/req {:.2} \
                     (per-request {:.2})  shed {}",
                    r.clients,
                    r.throughput_rps,
                    r.p99_ns,
                    r.fences_per_req,
                    pr.fences_per_req,
                    r.shed
                );
            }
        }
        other => {
            eprintln!("unknown figure `{other}`");
            std::process::exit(2);
        }
    }
}

fn emit(out: &std::path::Path, file: &str, header: &str, rows: impl Iterator<Item = String>) {
    let rows: Vec<String> = rows.collect();
    let path = out.join(file);
    write_csv(&path, header, &rows).expect("write csv");
    println!("    wrote {} ({} rows)", path.display(), rows.len());
}
