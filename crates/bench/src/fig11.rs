//! Fig. 11: vacation over red-black vs AVL tables, sweeping queries per
//! task.
//!
//! Paper claims reproduced here: the AVL version is a few percent faster
//! for every system (clobber/undo log traffic is data-structure dependent,
//! the v_log is not); logging overhead relative to No-log *decreases* as
//! queries-per-task (the read share) grows for Clobber-NVM and PMDK, while
//! Mnemosyne's read-path overhead *increases* with it.

use clobber_apps::{TreeKind, Vacation};
use clobber_nvm::Backend;
use clobber_sim::CostModel;
use clobber_workloads::vacation::ActionStream;

use crate::common::{make_runtime, Scale};

/// One measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// System label.
    pub system: &'static str,
    /// Table structure label.
    pub tree: &'static str,
    /// Items examined per reservation task.
    pub queries_per_task: usize,
    /// Simulated throughput in tasks per second.
    pub throughput: f64,
    /// Overhead relative to the no-log baseline (same tree/queries), in
    /// percent; 0 for the baseline itself.
    pub overhead_pct: f64,
}

/// CSV header.
pub const HEADER: &str = "system,tree,queries_per_task,throughput_tasks_per_sec,overhead_pct";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{:.0},{:.1}",
            self.system, self.tree, self.queries_per_task, self.throughput, self.overhead_pct
        )
    }
}

fn run_one(backend: Backend, tree: TreeKind, queries: usize, scale: Scale) -> f64 {
    let (pool, rt) = make_runtime(backend, scale);
    let relations = match scale {
        Scale::Quick => 60,
        Scale::Full => 1000,
    };
    let v = Vacation::create(&rt, tree, relations).expect("vacation");
    let cost = CostModel::optane();
    let n = scale.vacation_tasks();
    let mut total_ns = 0u64;
    for action in ActionStream::new(n, relations, relations / 2, queries, 1234) {
        let before = pool.stats().snapshot();
        v.run_action(&rt, 0, &action).expect("action");
        total_ns += cost.op_cost(&pool.stats().snapshot().delta(&before));
    }
    n as f64 * 1e9 / total_ns.max(1) as f64
}

/// Runs the figure: {nolog, clobber, pmdk, mnemosyne} × {rbtree, avltree}
/// × queries-per-task {2, 4, 6}.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for tree in [TreeKind::RedBlack, TreeKind::Avl] {
        for queries in [2usize, 4, 6] {
            let baseline = run_one(Backend::NoLog, tree, queries, scale);
            for backend in [
                Backend::NoLog,
                Backend::clobber(),
                Backend::Undo,
                Backend::Redo,
            ] {
                let tput = if backend == Backend::NoLog {
                    baseline
                } else {
                    run_one(backend, tree, queries, scale)
                };
                rows.push(Row {
                    system: backend.label(),
                    tree: tree.label(),
                    queries_per_task: queries,
                    throughput: tput,
                    overhead_pct: (baseline / tput - 1.0) * 100.0,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick-scale rows computed once and shared by all tests in this
    /// module (the sweep is the expensive part).
    fn cached_rows() -> &'static [Row] {
        static ROWS: std::sync::OnceLock<Vec<Row>> = std::sync::OnceLock::new();
        ROWS.get_or_init(|| run(Scale::Quick))
    }

    fn get<'a>(rows: &'a [Row], system: &str, tree: &str, q: usize) -> &'a Row {
        rows.iter()
            .find(|r| r.system == system && r.tree == tree && r.queries_per_task == q)
            .expect("row")
    }

    #[test]
    fn clobber_overhead_is_below_pmdk() {
        let rows = cached_rows();
        for tree in ["rbtree", "avltree"] {
            for q in [2, 4, 6] {
                let c = get(rows, "clobber", tree, q).overhead_pct;
                let p = get(rows, "pmdk", tree, q).overhead_pct;
                assert!(c < p, "{tree}/q{q}: clobber {c:.0}% vs pmdk {p:.0}%");
            }
        }
    }

    #[test]
    fn logging_overhead_shrinks_with_more_queries() {
        // Paper: more queries per task = higher read share = lower
        // clobber/undo logging overhead.
        let rows = cached_rows();
        for sys in ["clobber", "pmdk"] {
            let low = get(rows, sys, "rbtree", 2).overhead_pct;
            let high = get(rows, sys, "rbtree", 6).overhead_pct;
            assert!(high < low + 1.0, "{sys}: q2 {low:.0}% vs q6 {high:.0}%");
        }
    }

    #[test]
    fn baseline_has_zero_overhead() {
        let rows = cached_rows();
        for r in rows.iter().filter(|r| r.system == "nolog") {
            assert_eq!(r.overhead_pct, 0.0);
        }
    }
}
