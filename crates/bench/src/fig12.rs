//! Fig. 12: yada (Delaunay mesh refinement) across angle constraints.
//!
//! Refinement of a seeded input mesh at angle constraints 15°–30° under
//! {No-log, PMDK, Clobber-NVM}. The paper's claims: yada is
//! compute-intensive, so logging overhead is modest — ~42 % for PMDK and
//! ~27 % for Clobber-NVM over No-log — and roughly flat across the angle
//! sweep.

use clobber_apps::Yada;
use clobber_nvm::Backend;
use clobber_sim::CostModel;

use crate::common::{make_runtime, Scale};

/// Modeled geometry compute per refinement step (circumcenters, incircle
/// tests, cavity search), which the persistence cost model cannot see. The
/// paper's own yada run processes ~5 000 elements in ~1.5 s — hundreds of
/// microseconds per step, making yada compute-bound and its logging
/// overhead modest (§5.8). 40 µs is a conservative per-step charge for the
/// smaller cavities of our scaled-down meshes.
pub const COMPUTE_NS_PER_STEP: u64 = 40_000;

/// One measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// System label.
    pub system: &'static str,
    /// Angle constraint in degrees.
    pub angle: u32,
    /// Simulated refinement time in milliseconds.
    pub elapsed_ms: f64,
    /// Refinement transactions executed.
    pub steps: u64,
    /// Final mesh size (alive triangles).
    pub final_triangles: u64,
    /// Overhead over the no-log baseline, percent.
    pub overhead_pct: f64,
}

/// CSV header.
pub const HEADER: &str = "system,angle_deg,elapsed_ms,steps,final_triangles,overhead_pct";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{:.2},{},{},{:.1}",
            self.system,
            self.angle,
            self.elapsed_ms,
            self.steps,
            self.final_triangles,
            self.overhead_pct
        )
    }
}

fn run_one(backend: Backend, angle: u32, scale: Scale) -> (f64, u64, u64) {
    let (pool, rt) = make_runtime(backend, scale);
    let y = Yada::create(&rt, scale.yada_points(), angle as f64, 777).expect("mesh");
    let cost = CostModel::optane();
    let before = pool.stats().snapshot();
    let stats = y.refine_all(&rt, 0, 2_000_000).expect("refine");
    assert!(!stats.capped, "refinement must converge for the figure");
    let delta = pool.stats().snapshot().delta(&before);
    let elapsed_ms = (cost.op_cost(&delta) + stats.steps * COMPUTE_NS_PER_STEP) as f64 / 1e6;
    (elapsed_ms, stats.steps, stats.final_triangles)
}

/// Runs the figure: angles 15..=30 step 5 × {nolog, pmdk, clobber}.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for angle in [15u32, 20, 25, 30] {
        let (base_ms, base_steps, base_tris) = run_one(Backend::NoLog, angle, scale);
        for backend in [Backend::NoLog, Backend::Undo, Backend::clobber()] {
            let (ms, steps, tris) = if backend == Backend::NoLog {
                (base_ms, base_steps, base_tris)
            } else {
                run_one(backend, angle, scale)
            };
            rows.push(Row {
                system: backend.label(),
                angle,
                elapsed_ms: ms,
                steps,
                final_triangles: tris,
                overhead_pct: (ms / base_ms - 1.0) * 100.0,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick-scale rows computed once and shared by all tests in this
    /// module (the sweep is the expensive part).
    fn cached_rows() -> &'static [Row] {
        static ROWS: std::sync::OnceLock<Vec<Row>> = std::sync::OnceLock::new();
        ROWS.get_or_init(|| run(Scale::Quick))
    }

    #[test]
    fn clobber_overhead_is_below_pmdk_and_modest() {
        let rows = cached_rows();
        for angle in [15u32, 20, 25, 30] {
            let get = |sys: &str| {
                rows.iter()
                    .find(|r| r.system == sys && r.angle == angle)
                    .expect("row")
            };
            let c = get("clobber").overhead_pct;
            let p = get("pmdk").overhead_pct;
            assert!(c < p, "angle {angle}: clobber {c:.0}% vs pmdk {p:.0}%");
            assert!(
                p < 150.0,
                "angle {angle}: yada is compute-heavy, overhead should be modest, got {p:.0}%"
            );
        }
    }

    #[test]
    fn all_systems_produce_the_same_mesh() {
        // Deterministic transactions: the refinement result must not depend
        // on the logging strategy.
        let rows = cached_rows();
        for angle in [15u32, 20, 25, 30] {
            let sizes: Vec<u64> = rows
                .iter()
                .filter(|r| r.angle == angle)
                .map(|r| r.final_triangles)
                .collect();
            assert!(
                sizes.windows(2).all(|w| w[0] == w[1]),
                "angle {angle}: {sizes:?}"
            );
        }
    }

    #[test]
    fn stricter_angles_do_more_work() {
        let rows = cached_rows();
        let steps = |angle: u32| {
            rows.iter()
                .find(|r| r.system == "clobber" && r.angle == angle)
                .unwrap()
                .steps
        };
        assert!(steps(30) > steps(15), "{} vs {}", steps(30), steps(15));
    }
}
