//! Fig. 7: logging-strategy breakdown.
//!
//! Single-thread YCSB-Load inserts under {No-log, Clobber-NVM-vlog,
//! Clobber-NVM-clobberlog, Clobber-NVM-full, PMDK}, reporting throughput
//! plus per-transaction log entry counts and sizes. The paper's §5.3
//! quantitative claims this reproduces:
//!
//! * v_log: exactly one entry per transaction;
//! * Clobber-NVM uses 21.5–42.3 % as many log entries as PMDK;
//! * PMDK logs 16.7–154.5× more bytes than the clobber_log alone and
//!   1.1–42.6× more than Clobber-NVM in total;
//! * more than 70 % of Clobber-NVM's log bytes are in the v_log.

use clobber_nvm::Backend;

use crate::common::{make_runtime, DsHandle, DsKind, PerTx, Scale};
use clobber_sim::CostModel;
use clobber_workloads::{Workload, WorkloadKind};

/// One breakdown measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Variant label.
    pub variant: &'static str,
    /// Structure label.
    pub structure: &'static str,
    /// Simulated single-thread throughput (ops/sec).
    pub throughput: f64,
    /// Per-transaction statistics.
    pub per_tx: PerTx,
}

/// CSV header.
pub const HEADER: &str = "variant,structure,throughput_ops_per_sec,log_entries_per_tx,log_bytes_per_tx,vlog_entries_per_tx,vlog_bytes_per_tx,fences_per_tx";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{:.0},{:.2},{:.1},{:.2},{:.1},{:.2}",
            self.variant,
            self.structure,
            self.throughput,
            self.per_tx.log_entries,
            self.per_tx.log_bytes,
            self.per_tx.vlog_entries,
            self.per_tx.vlog_bytes,
            self.per_tx.fences
        )
    }
}

/// The five variants of the breakdown.
pub fn variants() -> [(&'static str, Backend); 5] {
    [
        ("nolog", Backend::NoLog),
        ("clobber-vlog", Backend::clobber_vlog_only()),
        ("clobber-clobberlog", Backend::clobber_log_only()),
        ("clobber-full", Backend::clobber()),
        ("pmdk", Backend::Undo),
    ]
}

/// Runs one cell: single-thread inserts, measured by counted events.
pub fn run_cell(kind: DsKind, variant: &'static str, backend: Backend, scale: Scale) -> Row {
    let (pool, rt) = make_runtime(backend, scale);
    let handle = DsHandle::create(kind, &rt);
    let n = scale.ds_ops();
    let cost = CostModel::optane();
    let before = pool.stats().snapshot();
    let mut total_ns = 0u64;
    for op in Workload::new(WorkloadKind::Load, n, kind.value_size(), 7) {
        let b = pool.stats().snapshot();
        handle.exec(&rt, 0, &op);
        total_ns += cost.op_cost(&pool.stats().snapshot().delta(&b));
    }
    let delta = pool.stats().snapshot().delta(&before);
    Row {
        variant,
        structure: kind.label(),
        throughput: n as f64 * 1e9 / total_ns.max(1) as f64,
        per_tx: PerTx::from_delta(&delta, n),
    }
}

/// Runs the full breakdown.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in DsKind::all() {
        for (variant, backend) in variants() {
            rows.push(run_cell(kind, variant, backend, scale));
        }
    }
    rows
}

/// Derived §5.2/§5.3 ratios for EXPERIMENTS.md: per structure, `(clobber
/// entries / pmdk entries, pmdk bytes / clobber bytes)`.
pub fn paper_ratios(rows: &[Row]) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for kind in DsKind::all() {
        let find = |v: &str| {
            rows.iter()
                .find(|r| r.structure == kind.label() && r.variant == v)
                .expect("row")
        };
        let clobber = find("clobber-full");
        let pmdk = find("pmdk");
        let entries_ratio = clobber.per_tx.total_entries() / pmdk.per_tx.total_entries().max(1e-9);
        let bytes_ratio =
            pmdk.per_tx.persisted_log_bytes() / clobber.per_tx.persisted_log_bytes().max(1e-9);
        out.push((kind.label().to_string(), entries_ratio, bytes_ratio));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick-scale rows computed once and shared by all tests in this
    /// module (the sweep is the expensive part).
    fn cached_rows() -> &'static [Row] {
        static ROWS: std::sync::OnceLock<Vec<Row>> = std::sync::OnceLock::new();
        ROWS.get_or_init(|| run(Scale::Quick))
    }

    #[test]
    fn vlog_has_exactly_one_entry_per_tx() {
        let rows = cached_rows();
        for r in rows.iter().filter(|r| r.variant == "clobber-full") {
            assert!(
                (r.per_tx.vlog_entries - 1.0).abs() < 0.01,
                "{}: {}",
                r.structure,
                r.per_tx.vlog_entries
            );
        }
    }

    #[test]
    fn clobber_uses_far_fewer_entries_than_pmdk() {
        let rows = cached_rows();
        for (ds, entries_ratio, bytes_ratio) in paper_ratios(rows) {
            assert!(
                entries_ratio < 0.7,
                "{ds}: clobber/pmdk entry ratio {entries_ratio:.2} (paper: 0.215-0.423)"
            );
            assert!(
                bytes_ratio > 1.0,
                "{ds}: pmdk/clobber byte ratio {bytes_ratio:.2} (paper: 1.1-42.6)"
            );
        }
    }

    #[test]
    fn vlog_dominates_clobber_log_bytes() {
        // Paper §5.3: "a great portion of log bytes are used in v_log
        // (more than 70%)".
        let rows = cached_rows();
        for r in rows.iter().filter(|r| r.variant == "clobber-full") {
            let frac = r.per_tx.vlog_bytes / r.per_tx.total_bytes();
            assert!(frac > 0.5, "{}: vlog fraction {frac:.2}", r.structure);
        }
    }

    #[test]
    fn nolog_is_fastest_and_full_clobber_beats_pmdk() {
        let rows = cached_rows();
        for kind in DsKind::all() {
            let get = |v: &str| {
                rows.iter()
                    .find(|r| r.structure == kind.label() && r.variant == v)
                    .unwrap()
                    .throughput
            };
            assert!(get("nolog") > get("clobber-full"), "{}", kind.label());
            assert!(get("clobber-full") > get("pmdk"), "{}", kind.label());
        }
    }

    #[test]
    fn hashmap_clobber_log_is_one_entry_of_8_bytes() {
        let row = run_cell(
            DsKind::Hashmap,
            "clobber-clobberlog",
            Backend::clobber_log_only(),
            Scale::Quick,
        );
        assert!((row.per_tx.log_entries - 1.0).abs() < 0.05, "{row:?}");
        assert!((row.per_tx.log_bytes - 8.0).abs() < 0.5, "{row:?}");
    }
}
