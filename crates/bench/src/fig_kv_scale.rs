//! `fig_kv_scale`: networked KV service throughput and tail latency vs
//! client count (the PR-10 deliverable, no counterpart figure in the
//! paper — the memcached port of §5.6 measured throughput only).
//!
//! A zipf-skewed set/get population of simulated closed-loop clients
//! drives the batched serve loop over the deterministic transport; the
//! DES cost model prices each batch's persistence-counter delta in
//! nanoseconds, making the simulated clock the latency oracle on a 1-CPU
//! host. Each client count runs twice — batched group commit vs
//! per-request commit — so the figure shows the commit-fence amortization
//! directly as fences/request.

use clobber_apps::{KvServer, LockScheme};
use clobber_kvnet::{
    serve, Admission, AdmissionConfig, KvService, ServeConfig, SimNet, SimNetConfig,
};
use clobber_nvm::Backend;
use clobber_sim::CostModel;
use clobber_workloads::Mix;

use crate::common::{make_runtime, Scale};

/// One service measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Simulated closed-loop clients.
    pub clients: usize,
    /// `batched` (group-committed coalesced batches) or `per-request`.
    pub mode: &'static str,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Median request latency (simulated ns).
    pub p50_ns: u64,
    /// 99th-percentile request latency (simulated ns).
    pub p99_ns: u64,
    /// 99.9th-percentile request latency (simulated ns).
    pub p999_ns: u64,
    /// Ordering fences per completed request.
    pub fences_per_req: f64,
    /// Requests shed by admission control (each retried until served).
    pub shed: u64,
}

/// CSV header.
pub const HEADER: &str = "clients,mode,throughput_rps,p50_ns,p99_ns,p999_ns,fences_per_req,shed";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{:.0},{},{},{},{:.3},{}",
            self.clients,
            self.mode,
            self.throughput_rps,
            self.p50_ns,
            self.p99_ns,
            self.p999_ns,
            self.fences_per_req,
            self.shed
        )
    }
}

/// Runs one cell: `clients` clients against the serve loop with the given
/// batch ceiling.
pub fn run_cell(clients: usize, theta: f64, seed: u64, max_batch: usize, scale: Scale) -> Row {
    let (pool, rt) = make_runtime(Backend::clobber(), scale);
    let server = KvServer::create(&rt, LockScheme::BucketRw).expect("server");
    let mut svc = KvService::new(rt, server);
    let mut adm = Admission::new(AdmissionConfig {
        per_conn_window: 4,
        global_cap: 256,
    });
    let cfg = SimNetConfig {
        clients,
        requests_per_client: scale.kv_net_requests(),
        key_space: 4096,
        seed,
        mix: Mix::InsertMost,
        zipf_theta: (0.0 < theta && theta < 1.0).then_some(theta),
        window: 2,
        think_ns: 500,
        shed_backoff_ns: 20_000,
    };
    let mut net = SimNet::new(&cfg).with_window(cfg.window);
    let before = pool.stats().snapshot();
    serve(
        &mut svc,
        &mut adm,
        &mut net,
        &ServeConfig {
            max_batch,
            cost: CostModel::optane(),
        },
    )
    .expect("serve");
    let delta = pool.stats().snapshot().delta(&before);
    let report = net.report();
    Row {
        clients,
        mode: if max_batch > 1 {
            "batched"
        } else {
            "per-request"
        },
        throughput_rps: report.throughput_rps,
        p50_ns: report.p50_ns,
        p99_ns: report.p99_ns,
        p999_ns: report.p999_ns,
        fences_per_req: delta.fences as f64 / report.completed.max(1) as f64,
        shed: report.shed,
    }
}

/// Client counts swept at each scale.
pub fn client_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 2, 4, 8],
        Scale::Full => vec![1, 2, 4, 8, 16, 32],
    }
}

/// Runs the full figure: client counts × {batched, per-request}.
pub fn run(scale: Scale, theta: f64, seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for clients in client_counts(scale) {
        for max_batch in [16, 1] {
            rows.push(run_cell(clients, theta, seed, max_batch, scale));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cached_rows() -> &'static [Row] {
        static ROWS: std::sync::OnceLock<Vec<Row>> = std::sync::OnceLock::new();
        ROWS.get_or_init(|| run(Scale::Quick, 0.99, 42))
    }

    fn get<'a>(rows: &'a [Row], clients: usize, mode: &str) -> &'a Row {
        rows.iter()
            .find(|r| r.clients == clients && r.mode == mode)
            .expect("row")
    }

    #[test]
    fn batching_amortizes_fences_at_four_plus_clients() {
        // The PR's acceptance criterion: batched group commit spends fewer
        // fences per request than per-request commit at >= 4 clients.
        let rows = cached_rows();
        for clients in [4, 8] {
            let b = get(rows, clients, "batched");
            let p = get(rows, clients, "per-request");
            assert!(
                b.fences_per_req < p.fences_per_req,
                "{clients} clients: batched {:.3} vs per-request {:.3}",
                b.fences_per_req,
                p.fences_per_req
            );
        }
    }

    #[test]
    fn batching_raises_throughput_under_concurrency() {
        let rows = cached_rows();
        let b = get(rows, 8, "batched");
        let p = get(rows, 8, "per-request");
        assert!(
            b.throughput_rps > p.throughput_rps,
            "batched {:.0} vs per-request {:.0} rps",
            b.throughput_rps,
            p.throughput_rps
        );
    }

    #[test]
    fn percentiles_are_ordered() {
        for r in cached_rows() {
            assert!(r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns, "{r:?}");
            assert!(r.throughput_rps > 0.0, "{r:?}");
        }
    }
}
