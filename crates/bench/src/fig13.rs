//! Fig. 13: effectiveness of the dependency-analysis refinement.
//!
//! Two views of the same optimization (paper §4.4 / §5.9):
//!
//! * **dynamic**: every workload runs under full Clobber-NVM and under the
//!   conservative variant (no unexposed/shadowed elimination); the figure
//!   reports the throughput improvement and the extra clobber_log traffic
//!   the unoptimized analysis incurs ("the unoptimized version incurs up to
//!   32 % more clobber_log entries and 47 % more bytes");
//! * **static**: the compiler corpus is compiled with and without the
//!   refinement pass, reporting instrumented-site counts (e.g. the paper's
//!   skiplist observation: "the compiler pass removes two clobber
//!   candidates out of five").

use clobber_apps::kvserver::{KvServer, LockScheme};
use clobber_apps::{TreeKind, Vacation, Yada};
use clobber_nvm::Backend;
use clobber_sim::CostModel;
use clobber_txir::pipeline::{compile, CompileOptions};
use clobber_txir::programs;
use clobber_workloads::vacation::ActionStream;
use clobber_workloads::{Mix, Request, RequestStream, Workload, WorkloadKind};

use crate::common::{make_runtime, DsHandle, DsKind, PerTx, Scale};

/// One dynamic-ablation row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload label.
    pub workload: String,
    /// Throughput improvement of refined over conservative, percent.
    pub speedup_pct: f64,
    /// Extra clobber_log entries of the conservative variant, percent.
    pub extra_entries_pct: f64,
    /// Extra clobber_log bytes of the conservative variant, percent.
    pub extra_bytes_pct: f64,
}

/// CSV header for the dynamic ablation.
pub const HEADER: &str = "workload,speedup_pct,extra_entries_pct,extra_bytes_pct";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{:.1},{:.1},{:.1}",
            self.workload, self.speedup_pct, self.extra_entries_pct, self.extra_bytes_pct
        )
    }
}

/// One static-pass row.
#[derive(Debug, Clone)]
pub struct StaticRow {
    /// IR program name.
    pub program: String,
    /// Instrumented sites without refinement.
    pub conservative_sites: usize,
    /// Instrumented sites with refinement.
    pub refined_sites: usize,
    /// Candidates removed as unexposed.
    pub removed_unexposed: usize,
    /// Candidates removed as shadowed.
    pub removed_shadowed: usize,
}

/// CSV header for the static rows.
pub const STATIC_HEADER: &str =
    "program,conservative_sites,refined_sites,removed_unexposed,removed_shadowed";

impl StaticRow {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.program,
            self.conservative_sites,
            self.refined_sites,
            self.removed_unexposed,
            self.removed_shadowed
        )
    }
}

/// Measures one workload under a backend, returning (sim-ns, per-tx stats).
fn measure<F>(backend: Backend, scale: Scale, mut body: F) -> (u64, PerTx, u64)
where
    F: FnMut(&clobber_nvm::Runtime) -> u64,
{
    let (pool, rt) = make_runtime(backend, scale);
    let cost = CostModel::optane();
    let before = pool.stats().snapshot();
    let txs = body(&rt);
    let delta = pool.stats().snapshot().delta(&before);
    (cost.op_cost(&delta), PerTx::from_delta(&delta, txs), txs)
}

fn compare<F>(workload: &str, scale: Scale, body: F) -> Row
where
    F: Fn(&clobber_nvm::Runtime) -> u64 + Copy,
{
    let (ns_ref, tx_ref, _) = measure(Backend::clobber(), scale, body);
    let (ns_con, tx_con, _) = measure(Backend::clobber_conservative(), scale, body);
    Row {
        workload: workload.to_string(),
        speedup_pct: (ns_con as f64 / ns_ref.max(1) as f64 - 1.0) * 100.0,
        extra_entries_pct: (tx_con.log_entries / tx_ref.log_entries.max(1e-9) - 1.0) * 100.0,
        extra_bytes_pct: (tx_con.log_bytes / tx_ref.log_bytes.max(1e-9) - 1.0) * 100.0,
    }
}

/// Runs the dynamic ablation over data structures and applications.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in DsKind::all() {
        rows.push(compare(kind.label(), scale, move |rt| {
            let handle = DsHandle::create(kind, rt);
            let n = scale.ds_ops() / 2;
            for op in Workload::new(WorkloadKind::Load, n, kind.value_size(), 3) {
                handle.exec(rt, 0, &op);
            }
            n
        }));
    }
    for mix in [Mix::InsertIntensive, Mix::SearchIntensive] {
        rows.push(compare(
            &format!("memcached-{}", mix.label()),
            scale,
            move |rt| {
                let server = KvServer::create(rt, LockScheme::BucketRw).expect("server");
                let n = scale.kv_ops() / 2;
                for req in RequestStream::new(mix, n, 2000, 5) {
                    match req {
                        Request::Set { .. } | Request::Get { .. } => {
                            server.handle(rt, &req).expect("req");
                        }
                    }
                }
                n
            },
        ));
    }
    rows.push(compare("vacation", scale, move |rt| {
        let v = Vacation::create(rt, TreeKind::RedBlack, 60).expect("vacation");
        let n = scale.vacation_tasks() / 2;
        for a in ActionStream::new(n, 60, 30, 3, 6) {
            v.run_action(rt, 0, &a).expect("action");
        }
        n
    }));
    rows.push(compare("yada", scale, move |rt| {
        let y = Yada::create(rt, scale.yada_points().min(120), 20.0, 555).expect("mesh");
        let stats = y.refine_all(rt, 0, 1_000_000).expect("refine");
        stats.steps
    }));
    rows
}

/// Runs the static-pass comparison over the IR corpus.
pub fn run_static() -> Vec<StaticRow> {
    programs::corpus()
        .into_iter()
        .map(|p| {
            let refined = compile(p.function.clone(), CompileOptions { refine: true }).expect("ir");
            let cons = compile(p.function, CompileOptions { refine: false }).expect("ir");
            StaticRow {
                program: refined.function.name.clone(),
                conservative_sites: cons.clobber_sites.len(),
                refined_sites: refined.clobber_sites.len(),
                removed_unexposed: refined.analysis.removed_unexposed,
                removed_shadowed: refined.analysis.removed_shadowed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick-scale rows computed once and shared by all tests in this
    /// module (the sweep is the expensive part).
    fn cached_rows() -> &'static [Row] {
        static ROWS: std::sync::OnceLock<Vec<Row>> = std::sync::OnceLock::new();
        ROWS.get_or_init(|| run(Scale::Quick))
    }

    #[test]
    fn refinement_never_slows_workloads_down() {
        for row in run(Scale::Quick) {
            assert!(
                row.speedup_pct > -8.0,
                "{}: refined should not lose: {row:?}",
                row.workload
            );
            assert!(
                row.extra_entries_pct >= -1.0,
                "{}: conservative cannot log less: {row:?}",
                row.workload
            );
        }
    }

    #[test]
    fn some_workload_shows_clear_improvement() {
        let rows = cached_rows();
        assert!(
            rows.iter().any(|r| r.extra_entries_pct > 10.0),
            "at least one workload must show the optimization effect: {rows:?}"
        );
    }

    #[test]
    fn static_pass_removes_candidates() {
        let rows = run_static();
        let total_removed: usize = rows
            .iter()
            .map(|r| r.removed_unexposed + r.removed_shadowed)
            .sum();
        assert!(total_removed >= 2, "{rows:?}");
        for r in &rows {
            assert!(r.refined_sites <= r.conservative_sites, "{r:?}");
        }
    }
}
