//! Fig. 6: data-structure throughput across libraries and thread counts.
//!
//! YCSB-Load over the four structures (8-byte keys, 32-byte for B+Tree,
//! 256-byte values), systems {Clobber-NVM, PMDK, Atlas, Mnemosyne},
//! threads swept to 24. The paper's headline claims this reproduces:
//! Clobber-NVM beats PMDK everywhere (~1.8× single-thread average, ≥1.9×
//! at 24 threads), beats Atlas by much more, and Mnemosyne closes the gap
//! on global-lock structures at high thread counts.

use clobber_nvm::Backend;
use clobber_sim::run_des;

use crate::common::{make_runtime, DsHandle, DsKind, DsOpSource, Scale};
use clobber_workloads::WorkloadKind;

/// One throughput measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// System label (clobber/pmdk/atlas/mnemosyne).
    pub system: &'static str,
    /// Structure label.
    pub structure: &'static str,
    /// Logical threads.
    pub threads: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Simulated throughput in operations per second.
    pub throughput: f64,
}

/// CSV header (matches the artifact's fig6.csv shape).
pub const HEADER: &str = "system,structure,threads,value_size,throughput_ops_per_sec";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{:.0}",
            self.system, self.structure, self.threads, self.value_size, self.throughput
        )
    }
}

/// The systems compared in Fig. 6.
pub fn systems() -> [Backend; 4] {
    [
        Backend::clobber(),
        Backend::Undo,
        Backend::Atlas,
        Backend::Redo,
    ]
}

/// Runs one cell of the figure.
pub fn run_cell(
    kind: DsKind,
    backend: Backend,
    threads: usize,
    total_ops: u64,
    scale: Scale,
) -> Row {
    let (_pool, rt) = make_runtime(backend, scale);
    let handle = DsHandle::create(kind, &rt);
    let mut src = DsOpSource::new(
        handle,
        rt.clone(),
        backend,
        WorkloadKind::Load,
        total_ops,
        kind.value_size(),
        threads,
        42,
    );
    let result = run_des(threads, &mut src);
    Row {
        system: backend.label(),
        structure: kind.label(),
        threads,
        value_size: kind.value_size(),
        throughput: result.throughput_ops_per_sec(),
    }
}

/// Runs the full figure sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in DsKind::all() {
        for backend in systems() {
            for &threads in &scale.threads() {
                rows.push(run_cell(kind, backend, threads, scale.ds_ops(), scale));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick-scale rows computed once and shared by all tests in this
    /// module (the sweep is the expensive part).
    fn cached_rows() -> &'static [Row] {
        static ROWS: std::sync::OnceLock<Vec<Row>> = std::sync::OnceLock::new();
        ROWS.get_or_init(|| run(Scale::Quick))
    }

    fn throughput(rows: &[Row], system: &str, structure: &str, threads: usize) -> f64 {
        rows.iter()
            .find(|r| r.system == system && r.structure == structure && r.threads == threads)
            .map(|r| r.throughput)
            .expect("row")
    }

    #[test]
    fn clobber_beats_undo_and_atlas_single_thread() {
        let rows = cached_rows();
        for ds in ["hashmap", "skiplist", "rbtree", "bptree"] {
            let clobber = throughput(rows, "clobber", ds, 1);
            let pmdk = throughput(rows, "pmdk", ds, 1);
            let atlas = throughput(rows, "atlas", ds, 1);
            assert!(
                clobber > pmdk,
                "{ds}: clobber {clobber:.0} vs pmdk {pmdk:.0}"
            );
            assert!(pmdk > atlas, "{ds}: pmdk {pmdk:.0} vs atlas {atlas:.0}");
        }
    }

    #[test]
    fn bptree_scales_with_per_leaf_locks() {
        let rows = cached_rows();
        let t1 = throughput(rows, "clobber", "bptree", 1);
        let t4 = throughput(rows, "clobber", "bptree", 4);
        assert!(t4 > t1 * 1.5, "bptree should scale: {t1:.0} -> {t4:.0}");
    }

    #[test]
    fn mnemosyne_scales_on_global_lock_structures() {
        // Paper: Mnemosyne matches Clobber-NVM on rbtree/skiplist at high
        // thread counts because it is not serialized by the global lock.
        let rows = cached_rows();
        let clobber_gain =
            throughput(rows, "clobber", "skiplist", 4) / throughput(rows, "clobber", "skiplist", 1);
        let mnemosyne_gain = throughput(rows, "mnemosyne", "skiplist", 4)
            / throughput(rows, "mnemosyne", "skiplist", 1);
        assert!(
            mnemosyne_gain > clobber_gain,
            "mnemosyne {mnemosyne_gain:.2}x vs clobber {clobber_gain:.2}x"
        );
    }

    #[test]
    fn csv_rows_are_well_formed() {
        let r = Row {
            system: "clobber",
            structure: "skiplist",
            threads: 1,
            value_size: 256,
            throughput: 181_000.0,
        };
        assert_eq!(r.csv(), "clobber,skiplist,1,256,181000");
    }
}
