//! Fig. 6: data-structure throughput across libraries and thread counts.
//!
//! YCSB-Load over the four structures (8-byte keys, 32-byte for B+Tree,
//! 256-byte values), systems {Clobber-NVM, PMDK, Atlas, Mnemosyne},
//! threads swept to 24. The paper's headline claims this reproduces:
//! Clobber-NVM beats PMDK everywhere (~1.8× single-thread average, ≥1.9×
//! at 24 threads), beats Atlas by much more, and Mnemosyne closes the gap
//! on global-lock structures at high thread counts.

use std::sync::{Arc, Barrier};

use clobber_nvm::{ArgList, Backend, LockRequest, Runtime, RuntimeOptions};
use clobber_pds::{hashmap, skiplist, HashMap, SkipList};
use clobber_pmem::{PmemPool, PoolConcurrency, PoolOptions};
use clobber_sim::{run_des, CostModel, OpSource, SimOp};

use crate::common::{make_runtime, DsHandle, DsKind, DsOpSource, Scale};
use clobber_workloads::WorkloadKind;

/// One throughput measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// System label (clobber/pmdk/atlas/mnemosyne).
    pub system: &'static str,
    /// Structure label.
    pub structure: &'static str,
    /// Logical threads.
    pub threads: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Simulated throughput in operations per second.
    pub throughput: f64,
}

/// CSV header (matches the artifact's fig6.csv shape).
pub const HEADER: &str = "system,structure,threads,value_size,throughput_ops_per_sec";

impl Row {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{:.0}",
            self.system, self.structure, self.threads, self.value_size, self.throughput
        )
    }
}

/// The systems compared in Fig. 6.
pub fn systems() -> [Backend; 4] {
    [
        Backend::clobber(),
        Backend::Undo,
        Backend::Atlas,
        Backend::Redo,
    ]
}

/// Runs one cell of the figure.
pub fn run_cell(
    kind: DsKind,
    backend: Backend,
    threads: usize,
    total_ops: u64,
    scale: Scale,
) -> Row {
    let (_pool, rt) = make_runtime(backend, scale);
    let handle = DsHandle::create(kind, &rt);
    let mut src = DsOpSource::new(
        handle,
        rt.clone(),
        backend,
        WorkloadKind::Load,
        total_ops,
        kind.value_size(),
        threads,
        42,
    );
    let result = run_des(threads, &mut src);
    Row {
        system: backend.label(),
        structure: kind.label(),
        threads,
        value_size: kind.value_size(),
        throughput: result.throughput_ops_per_sec(),
    }
}

/// Runs the full figure sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in DsKind::all() {
        for backend in systems() {
            for &threads in &scale.threads() {
                rows.push(run_cell(kind, backend, threads, scale.ds_ops(), scale));
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Real multi-thread Clobber series: racing OS threads through the
// LockManager, timed by the DES cost model.

/// One real-multithread measurement: racing OS threads execute locked
/// transactions for real (per-bucket locks + group commit vs a single
/// serializing lock); persistence costs are *measured* from the stats
/// delta, and the makespan comes from replaying the measured average op
/// cost and the real lock sets through [`run_des`] — the container has
/// one CPU, so the cost model is the wall clock (see EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct MtRow {
    /// Structure label (hashmap/skiplist).
    pub structure: &'static str,
    /// Lock series: the structure's native granularity (`per-node`) or a
    /// single lock serializing every transaction (`global-lock`).
    pub series: &'static str,
    /// Racing OS threads.
    pub threads: usize,
    /// Transactions committed across all threads.
    pub txs: u64,
    /// Measured ordering fences per transaction (group commit shrinks
    /// this in the per-node series).
    pub fences_per_tx: f64,
    /// Lock-manager waits observed during the racing run.
    pub lock_waits: u64,
    /// Cost-model throughput in operations per second.
    pub throughput: f64,
}

/// CSV header for the multi-thread series (`fig6_mt.csv`).
pub const MT_HEADER: &str =
    "structure,series,threads,txs,fences_per_tx,lock_waits,throughput_ops_per_sec";

impl MtRow {
    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{:.2},{},{:.0}",
            self.structure,
            self.series,
            self.threads,
            self.txs,
            self.fences_per_tx,
            self.lock_waits,
            self.throughput
        )
    }
}

/// Lock id for the serializing `global-lock` baseline (outside any
/// structure's `lock_of` namespace).
const MT_GLOBAL_LOCK: u64 = 0x6_1B0_CA11;

/// Replays recorded lock sets at a fixed measured per-op cost.
struct ReplaySource {
    per_thread: Vec<std::collections::VecDeque<Vec<clobber_sim::LockRequest>>>,
    cost_ns: u64,
}

impl OpSource for ReplaySource {
    fn next_op(&mut self, thread: usize) -> Option<SimOp> {
        let locks = self.per_thread[thread].pop_front()?;
        let cost = self.cost_ns;
        Some(SimOp {
            locks,
            execute: Box::new(move || cost),
        })
    }
}

enum MtHandle {
    H(HashMap),
    S(SkipList),
}

/// Keys for thread `t`: disjoint *lock* sets across threads (a lock id is
/// owned by `lock mod threads`), so the per-node series never contends and
/// group commit can run at `batch == threads` without stalling an epoch.
fn mt_keys(map: &HashMap, threads: usize, ops_per_thread: usize) -> Vec<Vec<u64>> {
    let mut keys: Vec<Vec<u64>> = vec![Vec::new(); threads];
    let mut k = 1u64;
    while keys.iter().any(|v| v.len() < ops_per_thread) {
        let t = (map.lock_of(k) % threads as u64) as usize;
        if keys[t].len() < ops_per_thread {
            keys[t].push(k);
        }
        k += 1;
    }
    keys
}

/// Runs one cell of the real multi-thread series.
pub fn run_mt_cell(
    kind: DsKind,
    series: &'static str,
    threads: usize,
    ops_per_thread: usize,
) -> MtRow {
    let pool = Arc::new(
        PmemPool::create(
            PoolOptions::performance(64 << 20)
                .with_concurrency(PoolConcurrency::Sharded { shards: 4 }),
        )
        .expect("pool"),
    );
    // Group commit only helps when transactions overlap: the per-node
    // hashmap series commits in `threads`-wide epochs; everything behind a
    // single lock (the baseline, and the skiplist's native global lock)
    // must run at batch 1 or the lone in-flight committer would wait for
    // epoch peers that can never start.
    let overlapping = series == "per-node" && kind == DsKind::Hashmap;
    let batch = if overlapping { threads } else { 1 };
    let rt = Arc::new(
        Runtime::create(
            pool.clone(),
            RuntimeOptions::new(Backend::clobber()).with_group_commit_batch(batch),
        )
        .expect("runtime"),
    );
    let (handle, keys) = match kind {
        DsKind::Hashmap => {
            HashMap::register(&rt);
            let map = HashMap::create(&rt).expect("create");
            let keys = mt_keys(&map, threads, ops_per_thread);
            (MtHandle::H(map), keys)
        }
        DsKind::Skiplist => {
            SkipList::register(&rt);
            let sl = SkipList::create(&rt).expect("create");
            let keys = (0..threads as u64)
                .map(|t| (0..ops_per_thread as u64).map(|i| t * 1000 + i).collect())
                .collect();
            (MtHandle::S(sl), keys)
        }
        _ => panic!("multi-thread series covers hashmap and skiplist"),
    };
    let value = vec![0xABu8; kind.value_size()];

    // The real racing run, measured.
    let before = pool.stats().snapshot();
    let start = Barrier::new(threads);
    std::thread::scope(|s| {
        for thread_keys in &keys {
            let (rt, handle, start, value) = (&rt, &handle, &start, &value);
            s.spawn(move || {
                start.wait();
                for &k in thread_keys {
                    match (handle, series) {
                        (MtHandle::H(map), "per-node") => {
                            map.insert_sync(rt, k, value).expect("insert")
                        }
                        (MtHandle::H(map), _) => {
                            let args = ArgList::new()
                                .with_u64(map.root().offset())
                                .with_u64(k)
                                .with_bytes(value);
                            rt.run_locked(
                                &[LockRequest::exclusive(MT_GLOBAL_LOCK)],
                                hashmap::TX_INSERT,
                                &args,
                            )
                            .expect("insert");
                        }
                        (MtHandle::S(sl), "per-node") => {
                            sl.insert_sync(rt, k, value).expect("insert")
                        }
                        (MtHandle::S(sl), _) => {
                            let args = ArgList::new()
                                .with_u64(sl.root().offset())
                                .with_u64(k)
                                .with_bytes(value);
                            rt.run_locked(
                                &[LockRequest::exclusive(MT_GLOBAL_LOCK)],
                                skiplist::TX_INSERT,
                                &args,
                            )
                            .expect("insert");
                        }
                    }
                }
            });
        }
    });
    let delta = pool.stats().snapshot().delta(&before);
    let txs = threads as u64 * ops_per_thread as u64;
    assert_eq!(
        delta.lock_acquisitions, txs,
        "every racing insert took its lock set exactly once"
    );

    // DES replay: measured average op cost, real lock sets.
    let cost_ns = (CostModel::optane().op_cost(&delta) / txs).max(1);
    let lock_sets = |t: usize| -> std::collections::VecDeque<Vec<clobber_sim::LockRequest>> {
        keys[t]
            .iter()
            .map(|&k| {
                let lock = match (&handle, series) {
                    (MtHandle::H(map), "per-node") => map.lock_of(k),
                    (MtHandle::S(sl), "per-node") => sl.lock(),
                    _ => MT_GLOBAL_LOCK,
                };
                vec![clobber_sim::LockRequest::exclusive(lock)]
            })
            .collect()
    };
    let mut src = ReplaySource {
        per_thread: (0..threads).map(lock_sets).collect(),
        cost_ns,
    };
    let result = run_des(threads, &mut src);
    assert_eq!(result.total_ops, txs);
    MtRow {
        structure: kind.label(),
        series,
        threads,
        txs,
        fences_per_tx: delta.fences as f64 / txs as f64,
        lock_waits: delta.lock_waits,
        throughput: result.throughput_ops_per_sec(),
    }
}

/// Thread counts for the real multi-thread series (bounded: every cell is
/// a real racing run on one CPU).
pub fn mt_threads(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 2, 4],
        Scale::Full => vec![1, 2, 4, 8],
    }
}

/// Runs the real multi-thread Clobber series: both lock series over the
/// concurrent hashmap and skiplist at each thread count, asserting the
/// DES-oracle ordering (per-node never loses to the serializing lock).
pub fn run_multithread(scale: Scale) -> Vec<MtRow> {
    let ops = match scale {
        Scale::Quick => 16,
        Scale::Full => 64,
    };
    let mut rows = Vec::new();
    for kind in [DsKind::Hashmap, DsKind::Skiplist] {
        for &threads in &mt_threads(scale) {
            let per_node = run_mt_cell(kind, "per-node", threads, ops);
            let global = run_mt_cell(kind, "global-lock", threads, ops);
            // The DES-oracle ordering. For the hashmap the granularities
            // genuinely differ, so per-node must win (or tie at one
            // thread). The skiplist's native lock *is* global — the two
            // series are the same experiment and may only diverge by
            // racing-interleaving noise (allocation placement shifts
            // cache-line flush coalescing), so the bound is a noise band.
            let floor = if kind == DsKind::Hashmap { 0.999 } else { 0.5 };
            assert!(
                per_node.throughput >= global.throughput * floor,
                "{} at {} threads: per-node {:.0} must not lose to global-lock {:.0}",
                kind.label(),
                threads,
                per_node.throughput,
                global.throughput
            );
            rows.push(per_node);
            rows.push(global);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick-scale rows computed once and shared by all tests in this
    /// module (the sweep is the expensive part).
    fn cached_rows() -> &'static [Row] {
        static ROWS: std::sync::OnceLock<Vec<Row>> = std::sync::OnceLock::new();
        ROWS.get_or_init(|| run(Scale::Quick))
    }

    fn throughput(rows: &[Row], system: &str, structure: &str, threads: usize) -> f64 {
        rows.iter()
            .find(|r| r.system == system && r.structure == structure && r.threads == threads)
            .map(|r| r.throughput)
            .expect("row")
    }

    #[test]
    fn clobber_beats_undo_and_atlas_single_thread() {
        let rows = cached_rows();
        for ds in ["hashmap", "skiplist", "rbtree", "bptree"] {
            let clobber = throughput(rows, "clobber", ds, 1);
            let pmdk = throughput(rows, "pmdk", ds, 1);
            let atlas = throughput(rows, "atlas", ds, 1);
            assert!(
                clobber > pmdk,
                "{ds}: clobber {clobber:.0} vs pmdk {pmdk:.0}"
            );
            assert!(pmdk > atlas, "{ds}: pmdk {pmdk:.0} vs atlas {atlas:.0}");
        }
    }

    #[test]
    fn bptree_scales_with_per_leaf_locks() {
        let rows = cached_rows();
        let t1 = throughput(rows, "clobber", "bptree", 1);
        let t4 = throughput(rows, "clobber", "bptree", 4);
        assert!(t4 > t1 * 1.5, "bptree should scale: {t1:.0} -> {t4:.0}");
    }

    #[test]
    fn mnemosyne_scales_on_global_lock_structures() {
        // Paper: Mnemosyne matches Clobber-NVM on rbtree/skiplist at high
        // thread counts because it is not serialized by the global lock.
        let rows = cached_rows();
        let clobber_gain =
            throughput(rows, "clobber", "skiplist", 4) / throughput(rows, "clobber", "skiplist", 1);
        let mnemosyne_gain = throughput(rows, "mnemosyne", "skiplist", 4)
            / throughput(rows, "mnemosyne", "skiplist", 1);
        assert!(
            mnemosyne_gain > clobber_gain,
            "mnemosyne {mnemosyne_gain:.2}x vs clobber {clobber_gain:.2}x"
        );
    }

    #[test]
    fn csv_rows_are_well_formed() {
        let r = Row {
            system: "clobber",
            structure: "skiplist",
            threads: 1,
            value_size: 256,
            throughput: 181_000.0,
        };
        assert_eq!(r.csv(), "clobber,skiplist,1,256,181000");
    }

    /// Quick-scale multi-thread rows, computed once (each cell is a real
    /// racing run).
    fn cached_mt_rows() -> &'static [MtRow] {
        static ROWS: std::sync::OnceLock<Vec<MtRow>> = std::sync::OnceLock::new();
        ROWS.get_or_init(|| run_multithread(Scale::Quick))
    }

    fn mt_row(structure: &str, series: &str, threads: usize) -> &'static MtRow {
        cached_mt_rows()
            .iter()
            .find(|r| r.structure == structure && r.series == series && r.threads == threads)
            .expect("row")
    }

    /// The tentpole acceptance: measured scaling shape matches the DES
    /// oracle — per-node never loses to the serializing lock at any
    /// thread count (also asserted inside `run_multithread` itself).
    #[test]
    fn mt_per_node_beats_global_lock_at_every_thread_count() {
        for &threads in &mt_threads(Scale::Quick) {
            let pn = mt_row("hashmap", "per-node", threads).throughput;
            let gl = mt_row("hashmap", "global-lock", threads).throughput;
            assert!(
                pn >= gl * 0.999,
                "hashmap@{threads}: per-node {pn:.0} vs global {gl:.0}"
            );
            if threads > 1 {
                // Overlap is eroded below the ideal `threads`x because
                // racing interleavings coalesce cache-line flushes worse
                // than a serialized run; half the ideal is a safe floor
                // (measured: 1.43x at 2 threads, >=2.25x at 4).
                let floor = threads as f64 * 0.5;
                assert!(
                    pn > gl * floor,
                    "hashmap@{threads}: per-node must genuinely overlap: {pn:.0} vs {gl:.0}"
                );
            }
        }
    }

    /// Per-bucket locks scale the hashmap; the skiplist's native global
    /// lock keeps it flat (the paper's Mnemosyne talking point).
    #[test]
    fn mt_hashmap_scales_but_skiplist_stays_flat() {
        let hm1 = mt_row("hashmap", "per-node", 1).throughput;
        let hm4 = mt_row("hashmap", "per-node", 4).throughput;
        assert!(hm4 > hm1 * 1.5, "hashmap: {hm1:.0} -> {hm4:.0}");
        // The skiplist band is loose: the 1- and 4-thread runs insert
        // different key sets (different node heights) and racing runs
        // jitter flush coalescing by ~20%, so "flat" means "well short
        // of the hashmap's genuine >=2x overlap", not bit-equal.
        let sl1 = mt_row("skiplist", "per-node", 1).throughput;
        let sl4 = mt_row("skiplist", "per-node", 4).throughput;
        assert!(sl4 < sl1 * 2.0, "skiplist: {sl1:.0} -> {sl4:.0}");
    }

    /// Group commit shrinks fences/tx for real overlapped committers, and
    /// disjoint per-bucket lock sets never wait while the serializing
    /// baseline piles up lock-manager queueing.
    #[test]
    fn mt_group_commit_and_lock_counters_behave() {
        let pn = mt_row("hashmap", "per-node", 4);
        let gl = mt_row("hashmap", "global-lock", 4);
        assert!(
            pn.fences_per_tx < gl.fences_per_tx,
            "group commit must save fences: {:.2} vs {:.2}",
            pn.fences_per_tx,
            gl.fences_per_tx
        );
        assert_eq!(pn.lock_waits, 0, "disjoint buckets never queue");
        // No assertion on the serializing series' lock_waits: on a 1-CPU
        // host a thread often runs its whole loop before a peer is even
        // scheduled, so real queueing is timing-dependent.
    }

    #[test]
    fn mt_csv_rows_are_well_formed() {
        let r = MtRow {
            structure: "hashmap",
            series: "per-node",
            threads: 4,
            txs: 64,
            fences_per_tx: 3.25,
            lock_waits: 0,
            throughput: 98_765.4,
        };
        assert_eq!(r.csv(), "hashmap,per-node,4,64,3.25,0,98765");
    }
}
