//! Networked-service micro-benchmark: one quick-scale batched cell of the
//! `fig_kv_scale` sweep (CI smoke for the serve loop + DES transport).

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_bench::common::Scale;
use clobber_bench::fig_kv_scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_kv_scale");
    group.sample_size(10);
    group.bench_function("clients4/batched", |b| {
        b.iter(|| fig_kv_scale::run_cell(4, 0.99, 42, 16, Scale::Quick));
    });
    group.bench_function("clients4/per-request", |b| {
        b.iter(|| fig_kv_scale::run_cell(4, 0.99, 42, 1, Scale::Quick));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
