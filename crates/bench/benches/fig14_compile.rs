//! Fig. 14 micro-benchmark: the compiler pipeline over the IR corpus, full
//! pipeline vs front-end-only.

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_txir::pipeline::{compile, CompileOptions};
use clobber_txir::programs;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_compile");
    group.sample_size(20);
    let corpus: Vec<_> = programs::corpus();
    group.bench_function("corpus_full_pipeline", |b| {
        b.iter(|| {
            for p in &corpus {
                let _ = compile(p.function.clone(), CompileOptions::default()).unwrap();
            }
        });
    });
    group.bench_function("corpus_frontend_only", |b| {
        b.iter(|| {
            for p in &corpus {
                p.function.validate().unwrap();
                let _ = clobber_txir::Cfg::new(&p.function);
            }
        });
    });
    let big = programs::synthetic_rmw_chain(256);
    group.bench_function("synthetic_256", |b| {
        b.iter(|| compile(big.clone(), CompileOptions::default()).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
