//! Lock-manager contention microbenchmarks — the A/B instrument for the
//! per-node FIFO rw-lock manager against a single serializing lock.
//!
//! Two groups, each at 1/2/4/8 racing OS threads:
//!
//! * `lock_contend_raw` — bare `LockManager` acquire/release cycles:
//!   `disjoint` (every thread its own lock id — the per-node shape, whose
//!   fast path never queues) vs `serialized` (all threads on one
//!   exclusive id — every acquisition after the first queues FIFO).
//! * `lock_contend_hashmap` — real locked transactions: `per_node` drives
//!   `HashMap::insert_sync` over thread-disjoint buckets, `serialized`
//!   routes the same inserts through one global exclusive lock.
//!
//! On a single-core host multi-thread rows measure contention overhead
//! only (no parallel speedup is physically available) — the DES-costed
//! scaling series lives in `fig6::run_multithread` / `repro fig6`.
//! EXPERIMENTS.md records both views.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_nvm::{Backend, LockManager, LockRequest, Runtime, RuntimeOptions};
use clobber_pds::HashMap;
use clobber_pmem::{PmemPool, PoolConcurrency, PoolOptions};

/// Acquire/release cycles per thread per batch.
const OPS: usize = 512;
/// Inserts per thread per batch in the transactional group.
const TX_OPS: usize = 64;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn raw(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_contend_raw");
    group.sample_size(15);
    let pool = Arc::new(PmemPool::create(PoolOptions::performance(1 << 20)).unwrap());
    let mgr = LockManager::new();
    for threads in THREADS {
        for (label, per_thread) in [("disjoint", true), ("serialized", false)] {
            let (pool, mgr) = (&pool, &mgr);
            group.bench_function(format!("{label}/t{threads}"), |b| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for t in 0..threads as u64 {
                            s.spawn(move || {
                                let lock = if per_thread { 1 + t } else { 0 };
                                for _ in 0..OPS {
                                    drop(mgr.acquire(pool, &[LockRequest::exclusive(lock)]));
                                }
                            });
                        }
                    });
                });
            });
        }
    }
    group.finish();
}

fn hashmap_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_contend_hashmap");
    group.sample_size(10);
    for threads in THREADS {
        for (label, per_node) in [("per_node", true), ("serialized", false)] {
            let pool = Arc::new(
                PmemPool::create(
                    PoolOptions::performance(256 << 20)
                        .with_concurrency(PoolConcurrency::Sharded { shards: 4 }),
                )
                .unwrap(),
            );
            let rt = Arc::new(
                Runtime::create(pool.clone(), RuntimeOptions::new(Backend::clobber())).unwrap(),
            );
            HashMap::register(&rt);
            let map = HashMap::create(&rt).unwrap();
            // Thread-disjoint buckets (a bucket lock belongs to
            // `lock mod threads`), so the per-node series never queues.
            let keys: Vec<Vec<u64>> = {
                let mut keys: Vec<Vec<u64>> = vec![Vec::new(); threads];
                let mut k = 1u64;
                while keys.iter().any(|v| v.len() < TX_OPS) {
                    let t = (map.lock_of(k) % threads as u64) as usize;
                    if keys[t].len() < TX_OPS {
                        keys[t].push(k);
                    }
                    k += 1;
                }
                keys
            };
            let serial_lock = [LockRequest::exclusive(0x5E71A117)];
            group.bench_function(format!("{label}/t{threads}"), |b| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for thread_keys in &keys {
                            let (rt, map, serial_lock) = (&rt, &map, &serial_lock);
                            s.spawn(move || {
                                for &k in thread_keys {
                                    if per_node {
                                        map.insert_sync(rt, k, b"contend").unwrap();
                                    } else {
                                        let _guard = rt.locks().acquire(rt.pool(), serial_lock);
                                        map.insert(rt, k, b"contend").unwrap();
                                    }
                                }
                            });
                        }
                    });
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, raw, hashmap_inserts);
criterion_main!(benches);
