//! Contended-allocator microbenchmarks — the before/after instrument for
//! sharded allocator arenas and thread-local reservation magazines.
//!
//! Engine configurations at 1/2/4/8 threads:
//!
//! * `global_arenas1` — single-lock engine, one arena (the PR 2 shape).
//! * `sharded4_arenas1` — 4-shard engine, one arena: every allocator call
//!   locks the one mirror plus **all** shards (the PR 3 shape — the
//!   baseline the arena work must beat).
//! * `sharded4_arenas4` — 4-shard engine at the new default arena count:
//!   the regression check against `sharded4_arenas1`.
//! * `sharded16_arenas1` — PR 3's all-shard locking at 16 shards: 17 lock
//!   acquisitions per allocator call. Shows why all-shard locking cannot
//!   scale with the shard count.
//! * `sharded16_arenas4` — 16-shard engine, four arenas: an allocator call
//!   locks one arena mirror plus only the 1–4 shards covering that arena,
//!   and reservation magazines serve repeat `reserve`s with no lock at
//!   all.
//!
//! Each iteration is one *batch*: `threads` scoped threads each performing
//! `OPS` allocator operations; the printed time is per batch (divide by
//! `threads * OPS` for per-op cost — EXPERIMENTS.md records both). The
//! transactional benchmark works in bursts of [`TX_ALLOCS`] reservations
//! per publish/fence, the vacation-style commit shape that lets freed
//! blocks refill the magazines. Pools run in performance mode so the
//! numbers isolate lock structure rather than cache simulation.
//!
//! On a single-core host the multi-thread rows measure contention overhead
//! only (no parallel speedup is physically available); the per-op lock
//! structure shows up directly in the 1-thread rows.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_pmem::{PmemPool, PoolOptions};

const POOL: u64 = 64 << 20;
/// Allocator operations per thread per batch.
const OPS: usize = 512;
/// Reservations per transactional burst (one publish + fence per burst).
const TX_ALLOCS: usize = 8;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn variants() -> [(&'static str, PoolOptions); 5] {
    [
        (
            "global_arenas1",
            PoolOptions::performance(POOL).with_arenas(1),
        ),
        (
            "sharded4_arenas1",
            PoolOptions::performance(POOL).with_shards(4).with_arenas(1),
        ),
        (
            "sharded4_arenas4",
            PoolOptions::performance(POOL).with_shards(4).with_arenas(4),
        ),
        (
            "sharded16_arenas1",
            PoolOptions::performance(POOL)
                .with_shards(16)
                .with_arenas(1),
        ),
        (
            "sharded16_arenas4",
            PoolOptions::performance(POOL)
                .with_shards(16)
                .with_arenas(4),
        ),
    ]
}

/// Immediate-path churn: `alloc(64)` + `free` per operation. After the
/// first batch every allocation is a free-list pop, so the measured cost is
/// the redo-protected metadata update under whatever locks the engine
/// takes.
fn alloc_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_contend_alloc_free");
    group.sample_size(15);
    for (label, opts) in variants() {
        let pool = Arc::new(PmemPool::create(opts).unwrap());
        for threads in THREADS {
            let pool = pool.clone();
            group.bench_function(format!("{label}/t{threads}"), |b| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let pool = &pool;
                            s.spawn(move || {
                                for _ in 0..OPS {
                                    let a = pool.alloc(64).unwrap();
                                    pool.free(a).unwrap();
                                }
                            });
                        }
                    });
                });
            });
        }
    }
    group.finish();
}

/// Transactional-path churn in commit-sized bursts: `TX_ALLOCS`×
/// `reserve(64)`, one `publish` of the burst, the commit `fence`, then the
/// frees — the allocator slice of a vacation-style transaction. The frees
/// stock the home arena's free list, so the next burst's first locked
/// reserve refills the thread's magazine and the rest of the burst is
/// lock-free.
fn reserve_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_contend_reserve_publish");
    group.sample_size(15);
    for (label, opts) in variants() {
        let pool = Arc::new(PmemPool::create(opts).unwrap());
        for threads in THREADS {
            let pool = pool.clone();
            group.bench_function(format!("{label}/t{threads}"), |b| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let pool = &pool;
                            s.spawn(move || {
                                let mut burst = Vec::with_capacity(TX_ALLOCS);
                                for _ in 0..OPS / TX_ALLOCS {
                                    burst.clear();
                                    for _ in 0..TX_ALLOCS {
                                        burst.push(pool.reserve(64).unwrap());
                                    }
                                    pool.publish(&burst).unwrap();
                                    pool.fence();
                                    for &r in &burst {
                                        pool.free(r).unwrap();
                                    }
                                }
                            });
                        }
                    });
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, alloc_free, reserve_publish);
criterion_main!(benches);
