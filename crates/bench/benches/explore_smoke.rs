//! Explorer smoke bench (ISSUE 8): one bounded exploration of the pds
//! hash-map workload per iteration — every non-pruned interleaving of the
//! (2,1) insert lanes, a capped set of crash prefixes each, full
//! crash/recover/verify pipeline per prefix. Exists so the explorer's
//! end-to-end cost stays visible and the CI bench smoke (`--test`) keeps
//! the bench body compiling against the public explore API.
//! Throughput tables live in EXPERIMENTS.md ("Schedule exploration").

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_nvm::{ExploreOptions, Explorer};
use clobber_pds::workload::ExploreWorkload;
use clobber_pmem::PoolConcurrency;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_hashmap_3op");
    group.sample_size(10);
    for engine in [
        PoolConcurrency::GlobalLock,
        PoolConcurrency::Sharded { shards: 4 },
    ] {
        let label = match engine {
            PoolConcurrency::GlobalLock => "global_lock",
            PoolConcurrency::Sharded { .. } => "sharded4",
            PoolConcurrency::SingleThread => "single_thread",
        };
        group.bench_function(label, |b| {
            let wl = ExploreWorkload::new(engine);
            let opts = ExploreOptions::default()
                .with_budget(64)
                .with_crash_stride(64)
                .with_max_crash_points(2)
                .with_seed(0xC10B);
            b.iter(|| {
                let explorer = Explorer::new(wl.session(), wl.seed_schedule(), opts.clone());
                let report = explorer.run().expect("exploration baseline");
                assert!(report.failures.is_empty());
                report.schedules_run
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
