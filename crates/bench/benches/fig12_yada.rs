//! Fig. 12 micro-benchmark: one refinement transaction per backend.

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_apps::{StepOutcome, Yada};
use clobber_bench::common::{make_runtime, Scale};
use clobber_nvm::Backend;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_refine_step");
    group.sample_size(10);
    for backend in [Backend::NoLog, Backend::clobber(), Backend::Undo] {
        let (_pool, rt) = make_runtime(backend, Scale::Quick);
        let mut mesh = Yada::create(&rt, 60, 25.0, 42).unwrap();
        let mut seed = 43u64;
        group.bench_function(backend.label(), |b| {
            b.iter(|| {
                // Recreate the mesh when refinement converges so each
                // iteration really refines.
                if mesh.refine_step(&rt, 0).unwrap() != StepOutcome::Refined {
                    mesh = Yada::create(&rt, 60, 25.0, seed).unwrap();
                    seed += 1;
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
