//! Fig. 9 micro-benchmark: one full crash+recovery cycle per system on the
//! hashmap. CSV breakdowns come from `repro fig9`.

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_bench::common::{DsKind, Scale};
use clobber_bench::fig9;
use clobber_nvm::Backend;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_recovery_cycle");
    group.sample_size(10);
    for backend in [Backend::clobber(), Backend::Undo] {
        group.bench_function(backend.label(), |b| {
            b.iter(|| fig9::run_cell(DsKind::Hashmap, backend, Scale::Quick, 11));
        });
    }
    group.finish();

    // Scaling: fixed live data across a 16x pool-size spread (recovery must
    // stay O(live data)), serial vs parallel scan.
    let mut group = c.benchmark_group("fig9_recovery_scaling");
    group.sample_size(10);
    for pool_mib in [1u64, 16] {
        for workers in [1usize, 4] {
            group.bench_function(format!("pool{pool_mib}mib_workers{workers}"), |b| {
                b.iter(|| fig9::run_scaling_cell(pool_mib, 4, workers, 11));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
