//! Fig. 10 micro-benchmark: one set and one get per backend on the
//! memcached-like server.

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_apps::kvserver::{KvServer, LockScheme};
use clobber_bench::common::{make_runtime, Scale};
use clobber_nvm::Backend;
use clobber_workloads::{Request, RequestStream};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_request");
    group.sample_size(10);
    for backend in [Backend::clobber(), Backend::Undo, Backend::Redo] {
        let (_pool, rt) = make_runtime(backend, Scale::Quick);
        let server = KvServer::create(&rt, LockScheme::BucketRw).unwrap();
        let mut k = 0u64;
        group.bench_function(format!("set/{}", backend.label()), |b| {
            b.iter(|| {
                k += 1;
                server
                    .handle(
                        &rt,
                        &Request::Set {
                            key: RequestStream::key_bytes(k % 1000),
                            value: RequestStream::value_bytes(k),
                        },
                    )
                    .unwrap();
            });
        });
        group.bench_function(format!("get/{}", backend.label()), |b| {
            b.iter(|| {
                k += 1;
                server
                    .handle(
                        &rt,
                        &Request::Get {
                            key: RequestStream::key_bytes(k % 1000),
                        },
                    )
                    .unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
