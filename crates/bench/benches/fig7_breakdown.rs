//! Fig. 7 micro-benchmark: hashmap insert latency under each logging
//! variant. Log counts/sizes are produced by `repro fig7`.

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_bench::common::{make_runtime, DsHandle, DsKind, Scale};
use clobber_bench::fig7;
use clobber_workloads::ycsb::KvOp;
use clobber_workloads::Workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_variant_insert");
    group.sample_size(10);
    for (variant, backend) in fig7::variants() {
        let (_pool, rt) = make_runtime(backend, Scale::Quick);
        let handle = DsHandle::create(DsKind::Hashmap, &rt);
        let mut key = 0u64;
        group.bench_function(variant, |b| {
            b.iter(|| {
                key = (key + 1) % 4096; // steady-state updates, see fig6 bench
                handle.exec(
                    &rt,
                    0,
                    &KvOp::Insert {
                        key,
                        value: Workload::value_for(key, 256),
                    },
                );
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
