//! Fig. 7 micro-benchmark: hashmap insert latency under each logging
//! variant. Log counts/sizes are produced by `repro fig7`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_bench::common::{make_runtime, DsHandle, DsKind, Scale};
use clobber_bench::fig7;
use clobber_nvm::{Backend, Runtime, RuntimeOptions};
use clobber_pmem::{LogFormat, PmemPool, PoolOptions};
use clobber_workloads::ycsb::KvOp;
use clobber_workloads::Workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_variant_insert");
    group.sample_size(10);
    for (variant, backend) in fig7::variants() {
        let (_pool, rt) = make_runtime(backend, Scale::Quick);
        let handle = DsHandle::create(DsKind::Hashmap, &rt);
        let mut key = 0u64;
        group.bench_function(variant, |b| {
            b.iter(|| {
                key = (key + 1) % 4096; // steady-state updates, see fig6 bench
                handle.exec(
                    &rt,
                    0,
                    &KvOp::Insert {
                        key,
                        value: Workload::value_for(key, 256),
                    },
                );
            });
        });
    }
    group.finish();
}

/// Persist-cost ablation for the log-writer tentpole: the full clobber
/// backend's insert under the v1 per-entry log vs the v2 line-buffered
/// log, on the dense CrashSim engine (every transaction fence routes
/// through the group-commit coalescer in both rows; with one committer the
/// epoch protocol is degenerate, so the rows isolate the log format).
/// Fence-count reductions under real concurrency are counted in
/// `core/tests/group_commit.rs`, not here: on this single-CPU container
/// wall clock under-reports fence savings because the simulated fence is
/// cheap.
fn log_writer_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_log_writer_insert");
    group.sample_size(10);
    for (label, format) in [
        ("v1_per_entry", LogFormat::V1),
        ("v2_line_buffered", LogFormat::V2),
    ] {
        let pool =
            Arc::new(PmemPool::create(PoolOptions::crash_sim(Scale::Quick.pool_bytes())).unwrap());
        let opts = RuntimeOptions::new(Backend::clobber()).with_log_format(format);
        let rt = Arc::new(Runtime::create(pool, opts).unwrap());
        let handle = DsHandle::create(DsKind::Hashmap, &rt);
        let mut key = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                key = (key + 1) % 4096;
                handle.exec(
                    &rt,
                    0,
                    &KvOp::Insert {
                        key,
                        value: Workload::value_for(key, 256),
                    },
                );
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench, log_writer_ablation);
criterion_main!(benches);
