//! Fig. 11 micro-benchmark: one reservation task per backend per tree.

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_apps::{TreeKind, Vacation};
use clobber_bench::common::{make_runtime, Scale};
use clobber_nvm::Backend;
use clobber_workloads::vacation::{Action, ResKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_reserve");
    group.sample_size(10);
    for tree in [TreeKind::RedBlack, TreeKind::Avl] {
        for backend in [Backend::NoLog, Backend::clobber(), Backend::Undo] {
            let (_pool, rt) = make_runtime(backend, Scale::Quick);
            let v = Vacation::create(&rt, tree, 60).unwrap();
            let mut i = 0u64;
            group.bench_function(format!("{}/{}", tree.label(), backend.label()), |b| {
                b.iter(|| {
                    i += 1;
                    // Alternate reserve/cancel so customer lists and item
                    // availability stay in steady state across long runs.
                    if i.is_multiple_of(2) {
                        v.run_action(
                            &rt,
                            0,
                            &Action::MakeReservation {
                                customer: i % 30,
                                queries: vec![
                                    (ResKind::Car, i % 60),
                                    (ResKind::Room, (i * 7) % 60),
                                ],
                            },
                        )
                        .unwrap();
                    } else {
                        v.run_action(&rt, 0, &Action::CancelReservation { customer: i % 30 })
                            .unwrap();
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
