//! Fig. 8 micro-benchmark: insert cost with and without the iDO shadow
//! observer; log-traffic ratios are produced by `repro fig8`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use clobber_bench::common::{DsHandle, DsKind, Scale};
use clobber_nvm::{Backend, Runtime, RuntimeOptions};
use clobber_pmem::{PmemPool, PoolOptions};
use clobber_workloads::ycsb::KvOp;
use clobber_workloads::Workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_ido_shadow");
    group.sample_size(10);
    for shadow in [false, true] {
        let pool = Arc::new(
            PmemPool::create(PoolOptions::performance(Scale::Quick.pool_bytes())).unwrap(),
        );
        let mut opts = RuntimeOptions::new(Backend::clobber());
        if shadow {
            opts = opts.with_ido_shadow();
        }
        let rt = Arc::new(Runtime::create(pool, opts).unwrap());
        let handle = DsHandle::create(DsKind::Skiplist, &rt);
        let mut key = 0u64;
        group.bench_function(
            if shadow {
                "with_shadow"
            } else {
                "without_shadow"
            },
            |b| {
                b.iter(|| {
                    key = (key + 1) % 4096; // steady-state updates, see fig6 bench
                    handle.exec(
                        &rt,
                        0,
                        &KvOp::Insert {
                            key: key.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            value: Workload::value_for(key, 256),
                        },
                    );
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
