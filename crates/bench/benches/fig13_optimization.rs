//! Fig. 13 micro-benchmark: refined vs conservative clobber detection on a
//! loop-heavy read-modify-write transaction.

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_bench::common::{make_runtime, Scale};
use clobber_nvm::{ArgList, Backend};
use clobber_pmem::PAddr;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_loop_clobber");
    group.sample_size(10);
    for backend in [Backend::clobber(), Backend::clobber_conservative()] {
        let (pool, rt) = make_runtime(backend, Scale::Quick);
        let cell = pool.alloc(8).unwrap();
        pool.persist(cell, 8).unwrap();
        rt.register("loop_bump", |tx, args| {
            let cell = PAddr::new(args.u64(0)?);
            for _ in 0..16 {
                let v = tx.read_u64(cell)?;
                tx.write_u64(cell, v + 1)?;
            }
            Ok(None)
        });
        let args = ArgList::new().with_u64(cell.offset());
        group.bench_function(backend.label(), |b| {
            b.iter(|| rt.run("loop_bump", &args).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
