//! Fig. 6 micro-benchmark: real wall-clock cost of one insert per
//! data structure per logging backend. The full simulated-throughput
//! sweep lives in `repro fig6`.

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_bench::common::{make_runtime, DsHandle, DsKind, Scale};
use clobber_nvm::Backend;
use clobber_workloads::ycsb::KvOp;
use clobber_workloads::Workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_insert");
    group.sample_size(10);
    for kind in DsKind::all() {
        for backend in [
            Backend::clobber(),
            Backend::Undo,
            Backend::Atlas,
            Backend::Redo,
        ] {
            let (_pool, rt) = make_runtime(backend, Scale::Quick);
            let handle = DsHandle::create(kind, &rt);
            let mut key = 0u64;
            group.bench_function(format!("{}/{}", kind.label(), backend.label()), |b| {
                b.iter(|| {
                    // Wrap the key space so long criterion runs settle into
                    // steady-state updates (alloc new value, free old) and
                    // cannot exhaust the pool.
                    key = (key + 1) % 4096;
                    let op = KvOp::Insert {
                        key: key.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        value: Workload::value_for(key, 256),
                    };
                    handle.exec(&rt, 0, &op);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
