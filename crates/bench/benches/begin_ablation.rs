//! Ablation: eager vs lazy begin-record persistence.
//!
//! With eager begin every transaction — including read-only lookups — pays
//! the v_log record and its two fences; with the lazy default the record is
//! deferred to the first store, so searches are fence-free. This is the
//! design choice DESIGN.md calls out; the gap below is its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use clobber_bench::common::{DsHandle, DsKind, Scale};
use clobber_nvm::{Backend, Runtime, RuntimeOptions};
use clobber_pmem::{PmemPool, PoolOptions};
use clobber_workloads::ycsb::KvOp;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("begin_ablation_get");
    group.sample_size(10);
    for eager in [false, true] {
        let pool = Arc::new(
            PmemPool::create(PoolOptions::performance(Scale::Quick.pool_bytes())).unwrap(),
        );
        let mut opts = RuntimeOptions::new(Backend::clobber());
        if eager {
            opts = opts.with_eager_begin();
        }
        let rt = Arc::new(Runtime::create(pool, opts).unwrap());
        let handle = DsHandle::create(DsKind::Hashmap, &rt);
        for k in 0..512u64 {
            handle.exec(
                &rt,
                0,
                &KvOp::Insert {
                    key: k,
                    value: vec![0u8; 64],
                },
            );
        }
        let mut k = 0u64;
        group.bench_function(if eager { "eager" } else { "lazy" }, |b| {
            b.iter(|| {
                k += 1;
                handle.exec(&rt, 0, &KvOp::Read { key: k % 512 });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
