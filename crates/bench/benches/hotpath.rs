//! Hot-path microbenchmarks for the pmem substrate and the transactional
//! fast path — the before/after instrument for the dense line cache.
//!
//! `crashsim_reference` runs the map-based reference cache (the original
//! model, kept for A/B comparison); `crashsim_dense` runs the dense
//! bitmap + shadow-buffer cache; `performance` skips cache simulation
//! entirely and bounds what the CrashSim path can hope to reach.
//! `crashsim_sharded4` runs the 4-shard engine (per-shard locks) and
//! `crashsim_singlethread` the owner-checked lock-free mode — the PR 3
//! concurrency A/B against the single-lock `crashsim_dense` baseline.
//! EXPERIMENTS.md records the measured numbers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use clobber_nvm::{Runtime, RuntimeOptions};
use clobber_pds::HashMap;
use clobber_pmem::{PmemPool, PoolOptions};
use clobber_workloads::Workload;

const STORE_POOL: u64 = 16 << 20;
const LOAD_POOL: u64 = 64 << 20;

fn variants(capacity: u64) -> [(&'static str, PoolOptions); 5] {
    [
        ("crashsim_dense", PoolOptions::crash_sim(capacity)),
        (
            "crashsim_reference",
            PoolOptions::crash_sim(capacity).with_reference_cache(),
        ),
        (
            "crashsim_sharded4",
            PoolOptions::crash_sim(capacity).with_shards(4),
        ),
        (
            "crashsim_singlethread",
            PoolOptions::crash_sim(capacity).single_thread(),
        ),
        ("performance", PoolOptions::performance(capacity)),
    ]
}

/// Raw substrate store path: one 64-byte store + flush per iteration, a
/// fence every 64 — the instruction mix of a logging-heavy transaction.
fn store_flush_fence(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_store");
    group.sample_size(20);
    for (label, opts) in variants(STORE_POOL) {
        let pool = PmemPool::create(opts).unwrap();
        let base = pool.alloc(1 << 20).unwrap();
        let data = [0xA5u8; 64];
        let mut i = 0u64;
        group.bench_function(format!("{label}/store64_flush"), |b| {
            b.iter(|| {
                let addr = base.add((i % 16_384) * 64);
                i += 1;
                pool.write_bytes(addr, &data).unwrap();
                pool.flush(addr, 64).unwrap();
                if i.is_multiple_of(64) {
                    pool.fence();
                }
            });
        });
    }
    group.finish();
}

/// End-to-end YCSB-Load step: one hashmap insert transaction (clobber
/// backend) per iteration, 256-byte values as in the paper's §5.2.
fn ycsb_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_ycsb_load");
    group.sample_size(10);
    for (label, opts) in variants(LOAD_POOL) {
        let pool = Arc::new(PmemPool::create(opts).unwrap());
        let rt = Runtime::create(pool, RuntimeOptions::default()).unwrap();
        HashMap::register(&rt);
        let map = HashMap::create(&rt).unwrap();
        let value = Workload::value_for(0, 256);
        let mut key = 0u64;
        group.bench_function(format!("{label}/hashmap_insert"), |b| {
            b.iter(|| {
                // Wrap the key space so long runs settle into steady-state
                // updates and cannot exhaust the pool.
                key = (key + 1) % 8192;
                map.insert(&rt, key.wrapping_mul(0x9E37_79B9_7F4A_7C15), &value)
                    .unwrap();
            });
        });
    }
    group.finish();
}

/// The same store/flush/fence mix and YCSB-Load insert with a tracer
/// attached — the tracing-ON overhead instrument against the
/// `crashsim_dense` rows of the groups above (EXPERIMENTS.md table).
/// The ring is drained in the untimed `iter_batched` setup slot so the
/// measured path is recording itself, not trace post-processing.
fn traced_variants(c: &mut Criterion) {
    use clobber_pmem::Tracer;
    use criterion::BatchSize;

    let mut group = c.benchmark_group("hotpath_store_traced");
    group.sample_size(20);
    let pool = PmemPool::create(PoolOptions::crash_sim(STORE_POOL)).unwrap();
    let base = pool.alloc(1 << 20).unwrap();
    let tracer = Arc::new(Tracer::with_capacity(1 << 16));
    pool.set_tracer(Some(tracer.clone()));
    let data = [0xA5u8; 64];
    let mut i = 0u64;
    let mut setups = 0u64;
    group.bench_function("crashsim_dense_traced/store64_flush", |b| {
        let tracer = tracer.clone();
        b.iter_batched(
            || {
                setups += 1;
                if setups.is_multiple_of(8192) {
                    let _ = tracer.take();
                }
            },
            |()| {
                let addr = base.add((i % 16_384) * 64);
                i += 1;
                pool.write_bytes(addr, &data).unwrap();
                pool.flush(addr, 64).unwrap();
                if i.is_multiple_of(64) {
                    pool.fence();
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();

    let mut group = c.benchmark_group("hotpath_ycsb_load_traced");
    group.sample_size(10);
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(LOAD_POOL)).unwrap());
    let tracer = Arc::new(Tracer::with_capacity(1 << 16));
    pool.set_tracer(Some(tracer.clone()));
    let rt = Runtime::create(pool, RuntimeOptions::default()).unwrap();
    HashMap::register(&rt);
    let map = HashMap::create(&rt).unwrap();
    let value = Workload::value_for(0, 256);
    let mut key = 0u64;
    let mut setups = 0u64;
    group.bench_function("crashsim_dense_traced/hashmap_insert", |b| {
        let tracer = tracer.clone();
        b.iter_batched(
            || {
                setups += 1;
                if setups.is_multiple_of(512) {
                    let _ = tracer.take();
                }
            },
            |()| {
                key = (key + 1) % 8192;
                map.insert(&rt, key.wrapping_mul(0x9E37_79B9_7F4A_7C15), &value)
                    .unwrap();
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Log-append A/B for the cache-line-buffered writer: the v1 per-entry
/// layout (entry flush + tail flush + fence per append) vs the v2 line
/// buffer (one streaming flush per full 64-byte line, fence deferred to
/// the sync point, here every 8 appends) vs v2 with the sync fence routed
/// through the group-commit coalescer (single-threaded: identical fence
/// count, measures the epoch-protocol overhead). Fence *counts* are pinned
/// in `ulog.rs`/`group_commit.rs` tests; this measures the wall-clock side
/// on the dense CrashSim engine.
fn log_append(c: &mut Criterion) {
    use clobber_nvm::GroupCommit;
    use clobber_pmem::{LogFormat, LogWriter, Ulog};

    const CAP: u64 = 1 << 20;
    const RESET_EVERY: u64 = 1024;
    const SYNC_EVERY: u64 = 8;

    let mut group = c.benchmark_group("hotpath_log_append");
    group.sample_size(20);
    let pre = [0x5Au8; 8];

    {
        let pool = PmemPool::create(PoolOptions::crash_sim(STORE_POOL)).unwrap();
        let base = pool.alloc(CAP).unwrap();
        let src = pool.alloc(64).unwrap();
        let log = Ulog::format_as(&pool, base, CAP, LogFormat::V1).unwrap();
        let mut i = 0u64;
        group.bench_function("v1_per_entry/append8", |b| {
            b.iter(|| {
                if i == RESET_EVERY {
                    log.clear(&pool).unwrap();
                    i = 0;
                }
                log.append(&pool, src, &pre).unwrap();
                i += 1;
            });
        });
    }

    for (label, grouped) in [
        ("v2_line_buffered/append8", false),
        ("v2_group_commit_path/append8", true),
    ] {
        let pool = PmemPool::create(PoolOptions::crash_sim(STORE_POOL)).unwrap();
        let base = pool.alloc(CAP).unwrap();
        let src = pool.alloc(64).unwrap();
        let gc = GroupCommit::new(1);
        let mut w = LogWriter::new(Ulog::format_as(&pool, base, CAP, LogFormat::V2).unwrap());
        let mut i = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                if i == RESET_EVERY {
                    w.reset_unfenced(&pool).unwrap();
                    pool.fence();
                    i = 0;
                }
                w.append(&pool, src, &pre).unwrap();
                i += 1;
                if i.is_multiple_of(SYNC_EVERY) {
                    if grouped {
                        w.sync_with(&pool, |p| gc.fence(p)).unwrap();
                    } else {
                        w.sync(&pool).unwrap();
                    }
                }
            });
        });
    }
    group.finish();
}

/// Many-range RangeSet insert/query mix: the set algebra a transaction
/// with a large, scattered read set exercises per store.
fn rangeset_dense_inserts(c: &mut Criterion) {
    use clobber_nvm::rangeset::RangeSet;
    let mut group = c.benchmark_group("hotpath_rangeset");
    group.sample_size(20);
    group.bench_function("insert_512_scattered", |b| {
        let mut set = RangeSet::new();
        b.iter(|| {
            set.clear();
            // Odd 16-byte ranges first (no merges), then the even gaps
            // (every insert merges two neighbours).
            for i in 0..256u64 {
                set.insert((2 * i + 1) * 16, (2 * i + 2) * 16);
            }
            for i in 0..256u64 {
                set.insert(2 * i * 16, (2 * i + 1) * 16);
            }
            criterion::black_box(set.len())
        });
    });
    group.bench_function("intersect_subtract_into_512", |b| {
        let mut set = RangeSet::new();
        for i in 0..512u64 {
            set.insert(2 * i * 16, (2 * i + 1) * 16);
        }
        let mut isect = Vec::new();
        let mut sub = Vec::new();
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 97) % (512 * 32);
            isect.clear();
            sub.clear();
            set.intersect_into(q, q + 256, &mut isect);
            set.subtract_into(q, q + 256, &mut sub);
            criterion::black_box(isect.len() + sub.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    store_flush_fence,
    ycsb_load,
    traced_variants,
    log_append,
    rangeset_dense_inserts
);
criterion_main!(benches);
