//! Counter-preservation regression: fixed-seed fig6/fig9-style runs must
//! produce bit-identical `StatsSnapshot`s under the dense line cache and
//! the reference (map-based) model, for every backend.
//!
//! The dense cache is a pure performance refactor of the CrashSim
//! substrate; every flush/fence/log accounting decision — and the seeded
//! crash's per-line survival draws — are part of its contract. If these
//! assertions fail, the substrate's behaviour (not just its speed) changed
//! and every recorded experiment in EXPERIMENTS.md is invalidated.

use std::sync::{Arc, Mutex};

use clobber_apps::{KvServer, LockScheme};
use clobber_kvnet::{
    serve, Admission, AdmissionConfig, KvService, ServeConfig, SimNet, SimNetConfig,
};
use clobber_nvm::{ArgList, Backend, LockRequest, RecoveryOptions, Runtime, RuntimeOptions};
use clobber_pds::{BpTree, HashMap};
use clobber_pmem::{
    CacheImpl, CrashConfig, FaultPlan, PAddr, PmemPool, PoolConcurrency, PoolMode, PoolOptions,
    StatsSnapshot, CACHE_LINE,
};
use clobber_workloads::{KvOp, Mix, Workload, WorkloadKind};

const OPS: u64 = 400;
const VALUE_SIZE: usize = 256;
const WORKLOAD_SEED: u64 = 42;
const CRASH_SEED: u64 = 7;

fn pool(reference: bool) -> Arc<PmemPool> {
    let mut opts = PoolOptions::crash_sim(64 << 20);
    if reference {
        opts = opts.with_reference_cache();
    }
    Arc::new(PmemPool::create(opts).unwrap())
}

fn pool_with(concurrency: PoolConcurrency) -> Arc<PmemPool> {
    let opts = PoolOptions::crash_sim(64 << 20).with_concurrency(concurrency);
    Arc::new(PmemPool::create(opts).unwrap())
}

/// YCSB-Load into the hashmap, then a seeded crash, recovery, and a full
/// dump: returns the pre-crash counters and the recovered contents.
fn hashmap_load(reference: bool, backend: Backend) -> (StatsSnapshot, Vec<(u64, Vec<u8>)>) {
    hashmap_load_faulted(reference, backend, false)
}

/// As [`hashmap_load`], optionally with a count-only fault plan armed for
/// the whole load — the injector must observe without perturbing.
fn hashmap_load_faulted(
    reference: bool,
    backend: Backend,
    armed: bool,
) -> (StatsSnapshot, Vec<(u64, Vec<u8>)>) {
    hashmap_load_on(pool(reference), backend, armed)
}

/// The [`hashmap_load`] pipeline on an explicit pool — the concurrency-mode
/// pins reuse the exact workload the cache-model pins run.
fn hashmap_load_on(
    pool: Arc<PmemPool>,
    backend: Backend,
    armed: bool,
) -> (StatsSnapshot, Vec<(u64, Vec<u8>)>) {
    if armed {
        pool.arm_faults(FaultPlan::count_only());
    }
    let rt = Runtime::create(pool.clone(), RuntimeOptions::new(backend)).unwrap();
    HashMap::register(&rt);
    let map = HashMap::create(&rt).unwrap();
    for op in Workload::new(WorkloadKind::Load, OPS, VALUE_SIZE, WORKLOAD_SEED) {
        if let KvOp::Insert { key, value } = op {
            map.insert(&rt, key, &value).unwrap();
        }
    }
    let snap = pool.stats().snapshot();
    let crashed = Arc::new(pool.crash(&CrashConfig::with_seed(CRASH_SEED)).unwrap());
    let rt2 = Runtime::open(crashed.clone(), RuntimeOptions::new(backend)).unwrap();
    HashMap::register(&rt2);
    rt2.recover().unwrap();
    let mut pairs = HashMap::open(map.root()).dump(&crashed).unwrap();
    pairs.sort();
    (snap, pairs)
}

/// YCSB-Load (32-byte keys) into the B+Tree under the clobber backend.
#[allow(clippy::type_complexity)]
fn bptree_load(reference: bool) -> (StatsSnapshot, Vec<(Vec<u8>, Vec<u8>)>) {
    let pool = pool(reference);
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default()).unwrap();
    BpTree::register(&rt);
    let tree = BpTree::create(&rt).unwrap();
    for op in Workload::new(WorkloadKind::Load, OPS, VALUE_SIZE, WORKLOAD_SEED) {
        if let KvOp::Insert { key, value } = op {
            tree.insert_u64(&rt, key, &value).unwrap();
        }
    }
    let snap = pool.stats().snapshot();
    let dump = tree.dump(&pool).unwrap();
    (snap, dump)
}

#[test]
fn hashmap_load_counters_identical_across_cache_models() {
    for backend in [
        Backend::clobber(),
        Backend::clobber_conservative(),
        Backend::Undo,
        Backend::Redo,
        Backend::Atlas,
    ] {
        let (dense, dense_pairs) = hashmap_load(false, backend);
        let (refr, ref_pairs) = hashmap_load(true, backend);
        assert_eq!(dense, refr, "counters diverged under {}", backend.label());
        assert_eq!(
            (
                dense.faults_armed,
                dense.faults_tripped,
                dense.fault_retries
            ),
            (0, 0, 0),
            "no fault activity in a plain run under {}",
            backend.label()
        );
        assert_eq!(
            dense_pairs,
            ref_pairs,
            "recovered contents diverged under {}",
            backend.label()
        );
    }
}

/// A count-only fault plan armed for the whole run must not perturb a
/// single persistence counter: the injector observes, never interferes.
#[test]
fn armed_count_only_plan_leaves_counters_untouched() {
    let backend = Backend::clobber();
    let (plain, plain_pairs) = hashmap_load(false, backend);
    let (armed, armed_pairs) = hashmap_load_faulted(false, backend, true);
    let mut masked = armed;
    assert_eq!(masked.faults_armed, 1);
    assert_eq!(masked.faults_tripped, 0);
    assert_eq!(masked.fault_retries, 0);
    masked.faults_armed = 0;
    assert_eq!(masked, plain, "armed-but-idle injector perturbed counters");
    assert_eq!(armed_pairs, plain_pairs);
}

#[test]
fn bptree_load_counters_identical_across_cache_models() {
    let (dense, dense_dump) = bptree_load(false);
    let (refr, ref_dump) = bptree_load(true);
    assert_eq!(dense, refr, "B+Tree load counters diverged");
    assert_eq!(dense_dump, ref_dump, "B+Tree contents diverged");
}

/// The sharded and `SingleThread` engines must reproduce the single-lock
/// pool's counters and recovered contents bit-for-bit on the same fixed
/// workload — the concurrency analogue of the cache-model pins above.
#[test]
fn hashmap_load_counters_identical_across_concurrency_modes() {
    for backend in [Backend::clobber(), Backend::Undo, Backend::Redo] {
        let (global, global_pairs) =
            hashmap_load_on(pool_with(PoolConcurrency::GlobalLock), backend, false);
        for concurrency in [
            PoolConcurrency::Sharded { shards: 4 },
            PoolConcurrency::Sharded { shards: 16 },
            PoolConcurrency::SingleThread,
        ] {
            let (snap, pairs) = hashmap_load_on(pool_with(concurrency), backend, false);
            assert_eq!(
                snap,
                global,
                "counters diverged under {} / {concurrency:?}",
                backend.label()
            );
            assert_eq!(
                pairs,
                global_pairs,
                "recovered contents diverged under {} / {concurrency:?}",
                backend.label()
            );
        }
    }
}

/// Per-log-kind attribution pins: the same fixed load must attribute
/// clobber-log, redo-log, and v_log persistence traffic to the right
/// counters — identically on every engine (the bit-identical `StatsSnapshot`
/// equality above already guarantees cross-engine agreement; this pins the
/// *shape* those counters must have so a silent mis-attribution can't hide
/// inside an equality that holds vacuously).
#[test]
fn per_kind_log_counters_attribute_by_backend() {
    for concurrency in [
        PoolConcurrency::GlobalLock,
        PoolConcurrency::Sharded { shards: 4 },
        PoolConcurrency::SingleThread,
    ] {
        let (clobber, _) = hashmap_load_on(pool_with(concurrency), Backend::clobber(), false);
        assert!(
            clobber.clog_flushes > 0 && clobber.clog_fences > 0,
            "{concurrency:?}: clobber load must sync the clobber log: {clobber:?}"
        );
        assert_eq!(
            (clobber.rlog_flushes, clobber.rlog_fences),
            (0, 0),
            "{concurrency:?}: clobber backend must not touch the redo log"
        );
        assert!(
            clobber.vlog_flushes > 0 && clobber.vlog_fences > 0,
            "{concurrency:?}: begin records are v_log traffic"
        );
        // Single-threaded load: every ordering request is its own epoch.
        assert!(clobber.gc_epochs > 0);
        assert_eq!(clobber.gc_fences_saved, 0);
        assert!(clobber.gc_epochs <= clobber.fences);

        let (redo, _) = hashmap_load_on(pool_with(concurrency), Backend::Redo, false);
        assert!(
            redo.rlog_flushes > 0 && redo.rlog_fences > 0,
            "{concurrency:?}: redo load must sync the redo log: {redo:?}"
        );
        assert_eq!(
            (redo.clog_flushes, redo.clog_fences),
            (0, 0),
            "{concurrency:?}: redo backend must not touch the clobber log"
        );
    }
}

/// Golden allocator-counter pins: a fixed alloc/free/reserve/publish/cancel
/// sequence must attribute exactly these counts — and identically across
/// every engine. `alloc_freelist`/`alloc_frontier` split where each block
/// came from; `magazine_hits` counts reserves served lock-free from the
/// thread's magazine (refilled by the first free-list reserve).
#[test]
fn allocator_counters_pin_across_engines() {
    for concurrency in [
        PoolConcurrency::GlobalLock,
        PoolConcurrency::Sharded { shards: 4 },
        PoolConcurrency::Sharded { shards: 16 },
        PoolConcurrency::SingleThread,
    ] {
        let pool = pool_with(concurrency);
        let before = pool.stats().snapshot();
        let a = pool.alloc(64).unwrap(); // frontier
        let b = pool.alloc(64).unwrap(); // frontier
        pool.free(a).unwrap();
        pool.free(b).unwrap();
        let r1 = pool.reserve(64).unwrap(); // free list (refills magazine)
        let r2 = pool.reserve(64).unwrap(); // magazine hit
        let r3 = pool.reserve(64).unwrap(); // frontier (lists drained)
        pool.publish(&[r1, r2]).unwrap();
        pool.fence();
        pool.cancel(&[r3]).unwrap();
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(
            (d.allocs, d.frees, d.reserves, d.publishes, d.cancels),
            (5, 2, 3, 1, 1),
            "{concurrency:?}: {d:?}"
        );
        assert_eq!(
            (d.alloc_freelist, d.alloc_frontier, d.magazine_hits),
            (2, 3, 1),
            "{concurrency:?}: {d:?}"
        );
        // The two engines must hand out identical addresses too.
        assert_eq!(r1, b, "LIFO pop order");
        assert_eq!(r2, a, "magazine preserves unbatched pop order");
    }
}

/// Cells mutated by the `rec_chain` txfunc in the recovery pins below.
const REC_CELLS: u64 = 3;

fn register_rec_chain(rt: &Runtime, trap: Option<(Arc<PmemPool>, Arc<Mutex<Option<Vec<u8>>>>)>) {
    rt.register("rec_chain", move |tx, args| {
        let base = PAddr::new(args.u64(0)?);
        for i in 0..REC_CELLS {
            let cell = base.add(8 * i);
            let v = tx.read_u64(cell)?;
            tx.write_u64(cell, v + i + 1)?;
            if i + 1 == REC_CELLS {
                if let Some((pool, image)) = &trap {
                    let mut img = image.lock().unwrap();
                    if img.is_none() {
                        *img = Some(
                            pool.crash(&CrashConfig::drop_all(9))
                                .unwrap()
                                .media_snapshot(),
                        );
                    }
                }
            }
        }
        Ok(None)
    });
}

/// A `rec_chain` run interrupted after its last store (status bit still
/// ongoing), as an adversarial crash image.
fn interrupted_chain_image(concurrency: PoolConcurrency) -> Vec<u8> {
    let opts = PoolOptions::crash_sim(1 << 20).with_concurrency(concurrency);
    let pool = Arc::new(PmemPool::create(opts).unwrap());
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default()).unwrap();
    let base = pool.alloc(8 * REC_CELLS).unwrap();
    for i in 0..REC_CELLS {
        pool.write_u64(base.add(8 * i), 100 + i).unwrap();
    }
    pool.persist(base, 8 * REC_CELLS).unwrap();
    rt.set_app_root(base).unwrap();
    let image = Arc::new(Mutex::new(None));
    register_rec_chain(&rt, Some((pool.clone(), image.clone())));
    rt.run("rec_chain", &ArgList::new().with_u64(base.offset()))
        .unwrap();
    let img = image.lock().unwrap().take().unwrap();
    img
}

fn reopen_rec(image: Vec<u8>, concurrency: PoolConcurrency) -> (Arc<PmemPool>, Runtime) {
    let pool = Arc::new(
        PmemPool::open_from_media_with(image, PoolMode::CrashSim, CacheImpl::Dense, concurrency)
            .unwrap(),
    );
    let rt = Runtime::open(pool.clone(), RuntimeOptions::default()).unwrap();
    register_rec_chain(&rt, None);
    (pool, rt)
}

/// Golden recovery-observability pins: the same fixed interrupted
/// transaction — recovered cleanly, resumed after a crash *inside*
/// recovery, and starved by a zero budget — must attribute exactly these
/// `rec_*` counts, identically on every engine.
#[test]
fn recovery_counters_pin_across_engines() {
    let no_wait = RecoveryOptions::default().no_wait();
    for concurrency in [
        PoolConcurrency::GlobalLock,
        PoolConcurrency::Sharded { shards: 4 },
        PoolConcurrency::SingleThread,
    ] {
        let image = interrupted_chain_image(concurrency);

        // A clean scan: one slot, one re-execution, nothing resumed.
        let (pool, rt) = reopen_rec(image.clone(), concurrency);
        rt.recover_with(&no_wait).unwrap();
        let s = pool.stats().snapshot();
        assert_eq!(
            (
                s.rec_slots_scanned,
                s.rec_reexecuted,
                s.rec_resumed,
                s.rec_watermark_advances,
                s.rec_workers,
                s.rec_budget_expired,
            ),
            (1, 1, 0, REC_CELLS, 1, 0),
            "clean scan under {concurrency:?}: {s:?}"
        );

        // Crash that scan mid-re-execution at a fixed persist event; the
        // resuming scan reports the resume and only the remaining
        // watermark advances.
        let (pool_c, rt_c) = reopen_rec(image.clone(), concurrency);
        pool_c.arm_faults(FaultPlan::crash_at(30));
        let _ = rt_c.recover_with(&no_wait);
        assert_eq!(pool_c.fault_tripped(), Some(30));
        let crashed = pool_c
            .crash(&CrashConfig::drop_all(0xEC))
            .unwrap()
            .media_snapshot();
        let (pool_r, rt_r) = reopen_rec(crashed, concurrency);
        rt_r.recover_with(&no_wait).unwrap();
        let r = pool_r.stats().snapshot();
        assert_eq!(
            (
                r.rec_slots_scanned,
                r.rec_reexecuted,
                r.rec_resumed,
                r.rec_watermark_advances,
                r.rec_workers,
                r.rec_budget_expired,
            ),
            (1, 1, 1, 2, 1, 0),
            "resumed scan under {concurrency:?}: {r:?}"
        );

        // A zero budget quarantines the slot instead of re-executing.
        let (pool_b, rt_b) = reopen_rec(image, concurrency);
        rt_b.recover_with(
            &RecoveryOptions::best_effort()
                .no_wait()
                .with_total_budget(std::time::Duration::ZERO),
        )
        .unwrap();
        let b = pool_b.stats().snapshot();
        assert_eq!(
            (
                b.rec_slots_scanned,
                b.rec_reexecuted,
                b.rec_resumed,
                b.rec_budget_expired,
            ),
            (1, 0, 0, 1),
            "starved scan under {concurrency:?}: {b:?}"
        );
    }
}

/// Golden lock-manager pins: a fixed single-threaded sequence of locked
/// transactions, multi-lock sets, shared holds, upgrades (one denied, one
/// granted) and a refused `try_acquire` must attribute exactly these
/// `lock_*` counts — identically on every engine. Counter contract:
/// `lock_acquisitions` is per granted *set*, `lock_read_holds` /
/// `lock_write_holds` per individual lock by mode (a granted upgrade adds
/// one write hold), `lock_conflicts` per refused try/upgrade, and
/// `lock_waits` per blocking acquire that actually queued (zero here —
/// everything is single-threaded).
#[test]
fn lock_counters_pin_across_engines() {
    for concurrency in [
        PoolConcurrency::GlobalLock,
        PoolConcurrency::Sharded { shards: 4 },
        PoolConcurrency::SingleThread,
    ] {
        let pool = pool_with(concurrency);
        let rt = Runtime::create(pool.clone(), RuntimeOptions::default()).unwrap();
        HashMap::register(&rt);
        let map = HashMap::create(&rt).unwrap();
        let before = pool.stats().snapshot();

        // One locked transaction through the runtime (acq 1, wh 1).
        map.insert_sync(&rt, 1, b"pinned").unwrap();
        // A multi-lock exclusive set (acq 2, wh 3).
        drop(rt.locks().acquire(
            &pool,
            &[LockRequest::exclusive(100), LockRequest::exclusive(101)],
        ));
        // Two shared holders; the upgrade is denied while a co-reader
        // exists (conflict 1), granted once sole (wh 4).
        let mut a = rt.locks().acquire(&pool, &[LockRequest::shared(7)]); // acq 3, rh 1
        let b = rt.locks().acquire(&pool, &[LockRequest::shared(7)]); // acq 4, rh 2
        assert!(a.try_upgrade(7).is_err());
        drop(b);
        a.try_upgrade(7).unwrap();
        drop(a);
        // A refused wait-die probe (acq 5, wh 5, conflict 2).
        let h = rt.locks().acquire(&pool, &[LockRequest::exclusive(9)]);
        assert!(rt
            .locks()
            .try_acquire(&pool, &[LockRequest::exclusive(9)])
            .is_err());
        drop(h);

        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(
            (
                d.lock_acquisitions,
                d.lock_read_holds,
                d.lock_write_holds,
                d.lock_conflicts,
                d.lock_waits,
            ),
            (5, 2, 5, 2, 0),
            "{concurrency:?}: {d:?}"
        );
        assert!(rt.locks().is_idle(), "{concurrency:?}: guards all released");
    }
}

/// Golden service-counter pins: a fixed simulated client population under
/// deliberately tight admission caps must attribute exactly these `net_*`
/// counts — identically on every engine. Counter contract: `net_accepted`
/// is per admitted request (a shed request re-admits when its resubmission
/// succeeds, so accepted > completed is impossible but accepted ==
/// completed + still-inflight is), `net_shed` per typed `Overloaded`
/// refusal, and every accepted request lands in exactly one of
/// `net_batched` (writes, batched into ONE locked transaction per drain)
/// or `net_snapshot_reads` (reads off the volatile cache, no transaction).
#[test]
fn net_counters_pin_across_engines() {
    for concurrency in [
        PoolConcurrency::GlobalLock,
        PoolConcurrency::Sharded { shards: 4 },
        PoolConcurrency::SingleThread,
    ] {
        let pool = pool_with(concurrency);
        let rt = Arc::new(Runtime::create(pool.clone(), RuntimeOptions::default()).unwrap());
        let server = KvServer::create(&rt, LockScheme::BucketRw).unwrap();
        let mut svc = KvService::new(rt, server);
        let mut adm = Admission::new(AdmissionConfig {
            per_conn_window: 1,
            global_cap: 2,
        });
        let cfg = SimNetConfig {
            clients: 4,
            requests_per_client: 4,
            key_space: 32,
            seed: 5,
            mix: Mix::InsertMost,
            zipf_theta: Some(0.9),
            window: 1,
            think_ns: 500,
            shed_backoff_ns: 20_000,
        };
        let before = pool.stats().snapshot();
        let mut net = SimNet::new(&cfg).with_window(1);
        serve(
            &mut svc,
            &mut adm,
            &mut net,
            &ServeConfig {
                max_batch: 8,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(
            (
                d.net_accepted,
                d.net_shed,
                d.net_batched,
                d.net_snapshot_reads
            ),
            (16, 1, 9, 7),
            "{concurrency:?}: {d:?}"
        );
        // Accounting closes: accepted requests split exactly between the
        // batched-write and snapshot-read paths, and all 16 completed.
        assert_eq!(d.net_accepted, d.net_batched + d.net_snapshot_reads);
        let report = net.report();
        assert_eq!(
            (report.completed, report.shed),
            (16, 1),
            "{concurrency:?}: {report:?}"
        );
    }
}

/// Golden per-shard pins: a fixed raw store/flush/fence pattern on a
/// 4-shard pool must attribute exactly these counts to each shard bank, and
/// the banks must sum to the aggregated snapshot. Shard geometry: 1 MiB /
/// 4 = 256 KiB per shard, line-aligned, so the offsets below land where the
/// comments say.
#[test]
fn sharded_per_shard_counters_pin() {
    let opts = PoolOptions::crash_sim(1 << 20).with_shards(4);
    let pool = PmemPool::create(opts).unwrap();
    let shard_bytes: u64 = (1 << 20) / 4;
    assert_eq!(pool.shard_count(), 4);
    let base = pool.alloc(768 << 10).unwrap();
    let before: Vec<StatsSnapshot> = pool.stats().shard_snapshots();
    let agg_before = pool.stats().snapshot();

    // Offsets are pool-global; `base` is inside shard 0 (the allocator
    // serves from the pool head), so aim each op by absolute shard.
    let in_shard = |s: u64, off: u64| {
        let abs = s * shard_bytes + off;
        assert!(abs >= base.offset(), "workload must stay inside the block");
        clobber_pmem::PAddr::new(abs)
    };
    let line = [0x11u8; CACHE_LINE as usize];

    // Shard 1: two single-line stores, one flushed (1 line).
    pool.write_bytes(in_shard(1, 0), &line).unwrap();
    pool.write_bytes(in_shard(1, CACHE_LINE), &line).unwrap();
    pool.flush(in_shard(1, 0), CACHE_LINE).unwrap();
    // Shard 2: one 3-line store, all flushed (3 lines).
    let big = [0x22u8; 3 * CACHE_LINE as usize];
    pool.write_bytes(in_shard(2, 0), &big).unwrap();
    pool.flush(in_shard(2, 0), 3 * CACHE_LINE).unwrap();
    // Boundary store straddling shards 2→3: attributed to shard 2 (first
    // byte), its flush splits 1 line to shard 2 and 1 line to shard 3.
    pool.write_bytes(in_shard(2, shard_bytes - CACHE_LINE), &[0x33u8; 128])
        .unwrap();
    pool.flush(in_shard(2, shard_bytes - CACHE_LINE), 128)
        .unwrap();
    // One fence: attributed to shard 0.
    pool.fence();
    // Shard 3: a read (one op, CACHE_LINE bytes).
    pool.read_bytes(in_shard(3, 0), CACHE_LINE).unwrap();

    let after: Vec<StatsSnapshot> = pool.stats().shard_snapshots();
    let delta: Vec<StatsSnapshot> = after.iter().zip(&before).map(|(a, b)| a.delta(b)).collect();

    // Shard 0: only the fence.
    assert_eq!(
        (
            delta[0].writes,
            delta[0].flushes,
            delta[0].fences,
            delta[0].reads
        ),
        (0, 0, 1, 0),
        "shard 0: {:?}",
        delta[0]
    );
    // Shard 1: 2 stores of 64 B, 1 flushed line.
    assert_eq!(
        (delta[1].writes, delta[1].write_bytes, delta[1].flushes),
        (2, 128, 1),
        "shard 1: {:?}",
        delta[1]
    );
    // Shard 2: 3-line store + boundary store (full 128 B attributed here),
    // 3 + 1 flushed lines.
    assert_eq!(
        (delta[2].writes, delta[2].write_bytes, delta[2].flushes),
        (2, 192 + 128, 4),
        "shard 2: {:?}",
        delta[2]
    );
    // Shard 3: the spilled flush line and the read.
    assert_eq!(
        (
            delta[3].writes,
            delta[3].flushes,
            delta[3].reads,
            delta[3].read_bytes
        ),
        (0, 1, 1, CACHE_LINE),
        "shard 3: {:?}",
        delta[3]
    );

    // Aggregation: summed banks equal the snapshot's hot fields.
    let agg = pool.stats().snapshot().delta(&agg_before);
    let sums = delta.iter().fold(StatsSnapshot::default(), |mut acc, d| {
        acc.flushes += d.flushes;
        acc.fences += d.fences;
        acc.writes += d.writes;
        acc.write_bytes += d.write_bytes;
        acc.reads += d.reads;
        acc.read_bytes += d.read_bytes;
        acc
    });
    assert_eq!(agg.flushes, sums.flushes);
    assert_eq!(agg.fences, sums.fences);
    assert_eq!(agg.writes, sums.writes);
    assert_eq!(agg.write_bytes, sums.write_bytes);
    assert_eq!(agg.reads, sums.reads);
    assert_eq!(agg.read_bytes, sums.read_bytes);
}
