//! Counter-preservation regression: fixed-seed fig6/fig9-style runs must
//! produce bit-identical `StatsSnapshot`s under the dense line cache and
//! the reference (map-based) model, for every backend.
//!
//! The dense cache is a pure performance refactor of the CrashSim
//! substrate; every flush/fence/log accounting decision — and the seeded
//! crash's per-line survival draws — are part of its contract. If these
//! assertions fail, the substrate's behaviour (not just its speed) changed
//! and every recorded experiment in EXPERIMENTS.md is invalidated.

use std::sync::Arc;

use clobber_nvm::{Backend, Runtime, RuntimeOptions};
use clobber_pds::{BpTree, HashMap};
use clobber_pmem::{CrashConfig, FaultPlan, PmemPool, PoolOptions, StatsSnapshot};
use clobber_workloads::{KvOp, Workload, WorkloadKind};

const OPS: u64 = 400;
const VALUE_SIZE: usize = 256;
const WORKLOAD_SEED: u64 = 42;
const CRASH_SEED: u64 = 7;

fn pool(reference: bool) -> Arc<PmemPool> {
    let mut opts = PoolOptions::crash_sim(64 << 20);
    if reference {
        opts = opts.with_reference_cache();
    }
    Arc::new(PmemPool::create(opts).unwrap())
}

/// YCSB-Load into the hashmap, then a seeded crash, recovery, and a full
/// dump: returns the pre-crash counters and the recovered contents.
fn hashmap_load(reference: bool, backend: Backend) -> (StatsSnapshot, Vec<(u64, Vec<u8>)>) {
    hashmap_load_faulted(reference, backend, false)
}

/// As [`hashmap_load`], optionally with a count-only fault plan armed for
/// the whole load — the injector must observe without perturbing.
fn hashmap_load_faulted(
    reference: bool,
    backend: Backend,
    armed: bool,
) -> (StatsSnapshot, Vec<(u64, Vec<u8>)>) {
    let pool = pool(reference);
    if armed {
        pool.arm_faults(FaultPlan::count_only());
    }
    let rt = Runtime::create(pool.clone(), RuntimeOptions::new(backend)).unwrap();
    HashMap::register(&rt);
    let map = HashMap::create(&rt).unwrap();
    for op in Workload::new(WorkloadKind::Load, OPS, VALUE_SIZE, WORKLOAD_SEED) {
        if let KvOp::Insert { key, value } = op {
            map.insert(&rt, key, &value).unwrap();
        }
    }
    let snap = pool.stats().snapshot();
    let crashed = Arc::new(pool.crash(&CrashConfig::with_seed(CRASH_SEED)).unwrap());
    let rt2 = Runtime::open(crashed.clone(), RuntimeOptions::new(backend)).unwrap();
    HashMap::register(&rt2);
    rt2.recover().unwrap();
    let mut pairs = HashMap::open(map.root()).dump(&crashed).unwrap();
    pairs.sort();
    (snap, pairs)
}

/// YCSB-Load (32-byte keys) into the B+Tree under the clobber backend.
fn bptree_load(reference: bool) -> (StatsSnapshot, Vec<(Vec<u8>, Vec<u8>)>) {
    let pool = pool(reference);
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default()).unwrap();
    BpTree::register(&rt);
    let tree = BpTree::create(&rt).unwrap();
    for op in Workload::new(WorkloadKind::Load, OPS, VALUE_SIZE, WORKLOAD_SEED) {
        if let KvOp::Insert { key, value } = op {
            tree.insert_u64(&rt, key, &value).unwrap();
        }
    }
    let snap = pool.stats().snapshot();
    let dump = tree.dump(&pool).unwrap();
    (snap, dump)
}

#[test]
fn hashmap_load_counters_identical_across_cache_models() {
    for backend in [
        Backend::clobber(),
        Backend::clobber_conservative(),
        Backend::Undo,
        Backend::Redo,
        Backend::Atlas,
    ] {
        let (dense, dense_pairs) = hashmap_load(false, backend);
        let (refr, ref_pairs) = hashmap_load(true, backend);
        assert_eq!(dense, refr, "counters diverged under {}", backend.label());
        assert_eq!(
            (
                dense.faults_armed,
                dense.faults_tripped,
                dense.fault_retries
            ),
            (0, 0, 0),
            "no fault activity in a plain run under {}",
            backend.label()
        );
        assert_eq!(
            dense_pairs,
            ref_pairs,
            "recovered contents diverged under {}",
            backend.label()
        );
    }
}

/// A count-only fault plan armed for the whole run must not perturb a
/// single persistence counter: the injector observes, never interferes.
#[test]
fn armed_count_only_plan_leaves_counters_untouched() {
    let backend = Backend::clobber();
    let (plain, plain_pairs) = hashmap_load(false, backend);
    let (armed, armed_pairs) = hashmap_load_faulted(false, backend, true);
    let mut masked = armed;
    assert_eq!(masked.faults_armed, 1);
    assert_eq!(masked.faults_tripped, 0);
    assert_eq!(masked.fault_retries, 0);
    masked.faults_armed = 0;
    assert_eq!(masked, plain, "armed-but-idle injector perturbed counters");
    assert_eq!(armed_pairs, plain_pairs);
}

#[test]
fn bptree_load_counters_identical_across_cache_models() {
    let (dense, dense_dump) = bptree_load(false);
    let (refr, ref_dump) = bptree_load(true);
    assert_eq!(dense, refr, "B+Tree load counters diverged");
    assert_eq!(dense_dump, ref_dump, "B+Tree contents diverged");
}
