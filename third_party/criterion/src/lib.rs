//! Vendored `criterion` shim: a thin wall-clock benchmark harness with the
//! API subset this workspace uses (`benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`/`criterion_main!`).
//!
//! Each bench function is warmed up, then timed over `sample_size` samples;
//! the median and mean nanoseconds per iteration are printed to stdout.
//! There is no statistical analysis, plotting, or baseline comparison.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

const WARM_UP: Duration = Duration::from_millis(60);
const TARGET_SAMPLE: Duration = Duration::from_millis(4);

/// Top-level harness handle passed to bench functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _c: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.default_sample_size;
        run_one(&id.into(), n, f);
        self
    }
}

/// A named set of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` and prints `group/id  time: [...]`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Ends the group (exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording nanoseconds per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the budget elapses, estimating iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let iters_per_sample = (TARGET_SAMPLE.as_nanos() as f64 / per_iter.max(1.0))
            .max(1.0)
            .min(u64::MAX as f64) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let mut sorted = b.samples_ns.clone();
    sorted.sort_by(|a, c| a.partial_cmp(c).unwrap());
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{id:<60} time: [median {} mean {}] ({} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        sorted.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles bench functions into a runner callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_trivial_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2u64 + 2)
            })
        });
        group.finish();
        assert!(runs > 0, "routine never executed");
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("us"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(12_300_000_000.0).ends_with('s'));
    }
}
