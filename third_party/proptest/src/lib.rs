//! Vendored `proptest` shim: the subset of the API this workspace uses —
//! `proptest!`, `prop_assert*!`, `prop_oneof!`, `Strategy::prop_map`,
//! `collection::vec`, `any`, range and tuple strategies, `ProptestConfig`.
//!
//! Cases are generated from a seed derived from the test's module path, so
//! runs are deterministic. Unlike real proptest there is no shrinking and
//! no regression-file persistence; a failure reports the case number and
//! the assertion message.

use std::rc::Rc;

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier string.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Error produced by a failed `prop_assert*!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy: Clone {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O + Clone> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy; output of [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Weighted choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Creates a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let span = (e as i128 - s as i128) as u64;
                let v = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

/// Uniform strategy over the whole domain of `T` (`any::<u8>()`, ...).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with random length drawn from `sizes`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty vec size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs each property function for `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("property failed at case {}/{}: {}", __case + 1, __cfg.cases, e);
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
                __l,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Weighted (`w => strat`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u64, Vec<u8>),
        Del(u64),
    }

    fn op() -> impl Strategy<Value = Op> {
        let key = 0u64..16;
        prop_oneof![
            3 => (key.clone(), crate::collection::vec(any::<u8>(), 1..8))
                .prop_map(|(k, v)| Op::Put(k, v)),
            1 => key.prop_map(Op::Del),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, (a, b) in (0u64..4, 10i64..20)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(a < 4, "a={} escaped", a);
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_produces_every_arm(ops in crate::collection::vec(op(), 1..64)) {
            prop_assert!(!ops.is_empty());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            fn always_fails(x in 0u64..8) {
                prop_assert!(x > 100, "x={} is small", x);
            }
        }
        always_fails();
    }
}
