//! Vendored `rand` shim: seeded, deterministic generators with the small
//! `Rng` surface this workspace uses (`gen`, `gen_bool`, `gen_range`).
//!
//! The stream differs from the real `rand::rngs::StdRng` (ChaCha12); only
//! per-seed determinism is guaranteed, which is all the reproduction's
//! crash tests and workload generators rely on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("Standard"
/// distribution in real rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform value can be drawn from (`Rng::gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator (xoshiro256** seeded via SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(4);
        let _ = draw(&mut r);
    }
}
