//! Vendored `crossbeam` shim: `scope`/`Scope::spawn` over
//! `std::thread::scope`, with crossbeam's panic-capturing `Result` return.

use std::any::Any;

/// Error payload of a panicked scoped thread.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`]'s closure and to spawned threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so it
    /// can spawn further threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned; all
/// threads are joined before returning. Returns `Err` with the panic payload
/// if any spawned thread (or `f` itself) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicU64::new(0);
        let n = 8u64;
        super::scope(|s| {
            for _ in 0..n {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), n);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("child panic"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_the_scope_arg() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
