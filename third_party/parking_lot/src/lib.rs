//! Vendored `parking_lot` shim: the subset of the API this workspace uses,
//! implemented over `std::sync`. Unlike std, the guards are non-poisoning —
//! a panic while holding a lock does not wedge later accessors — which
//! matches parking_lot's semantics.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poisoning attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "non-poisoning lock stays usable");
    }
}
