//! Refine a persistent Delaunay mesh (the yada workload), interrupt it
//! with a simulated power failure, and resume after recovery.
//!
//! ```bash
//! cargo run --release --example mesh_refinement
//! ```

use clobber_apps::Yada;
use clobber_nvm::{Runtime, RuntimeOptions};
use clobber_pmem::{CrashConfig, PmemPool, PoolMode, PoolOptions};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(256 << 20))?);
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default())?;
    let mesh = Yada::create(&rt, 120, 22.0, 2026)?;
    println!(
        "input mesh: {} points, {} triangles, constraint 22 degrees",
        mesh.point_count(&pool)?,
        mesh.alive_triangles(&pool)?
    );

    // Refine half-way...
    let mut steps = 0u64;
    while steps < 40 && mesh.refine_step(&rt, 0)? == clobber_apps::StepOutcome::Refined {
        steps += 1;
    }
    println!("refined {steps} steps, then the power fails mid-run");

    // ...crash adversarially and resume on the recovered pool.
    let crashed = pool.crash(&CrashConfig::drop_all(3))?;
    let pool2 = Arc::new(PmemPool::open_from_media(
        crashed.media_snapshot(),
        PoolMode::CrashSim,
    )?);
    let rt2 = Runtime::open(pool2.clone(), RuntimeOptions::default())?;
    Yada::register(&rt2);
    let report = rt2.recover()?;
    println!(
        "recovery re-executed {} transaction(s)",
        report.reexecuted.len()
    );

    let mesh2 = Yada::open(&rt2)?;
    let stats = mesh2.refine_all(&rt2, 0, 1_000_000)?;
    println!(
        "resumed to convergence: +{} steps, {} points inserted total, {} final triangles",
        stats.steps, stats.inserted_points, stats.final_triangles
    );
    mesh2.verify(&pool2, true)?;
    println!("final mesh is valid."); // the artifact's yada prints the same
    Ok(())
}
