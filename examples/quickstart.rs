//! Quickstart: create a pool, register a txfunc, run it, crash, recover.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use clobber_nvm::{ArgList, Runtime, RuntimeOptions};
use clobber_pmem::{CrashConfig, PAddr, PmemPool, PoolMode, PoolOptions};

fn register(rt: &Runtime) {
    // The paper's Fig. 2a: a persistent list insert. The only clobbered
    // input is the head pointer — exactly 8 bytes reach the clobber_log.
    rt.register("list_insert", |tx, args| {
        let head = PAddr::new(args.u64(0)?);
        let value = args.bytes(1)?.to_vec();
        let node = tx.pmalloc(16 + value.len() as u64)?;
        tx.write_u64(node.add(8), value.len() as u64)?;
        tx.write_bytes(node.add(16), &value)?;
        let old_head = tx.read_u64(head)?; // `head` is now a transaction input
        tx.write_u64(node, old_head)?;
        tx.write_u64(head, node.offset())?; // ...and this store clobbers it
        Ok(None)
    });
}

fn walk(pool: &PmemPool, head: PAddr) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = pool.read_u64(head).unwrap();
    while cur != 0 {
        let len = pool.read_u64(PAddr::new(cur + 8)).unwrap();
        let bytes = pool.read_bytes(PAddr::new(cur + 16), len).unwrap();
        out.push(String::from_utf8_lossy(&bytes).into_owned());
        cur = pool.read_u64(PAddr::new(cur)).unwrap();
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A crash-sim pool models the volatile CPU cache: only flushed-and-
    // fenced lines survive a power failure.
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(8 << 20))?);
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default())?;
    register(&rt);

    let head = pool.alloc(8)?;
    pool.persist(head, 8)?;
    rt.set_app_root(head)?;

    let before = pool.stats().snapshot();
    for word in ["log", "less,", "re-execute", "more"] {
        rt.run(
            "list_insert",
            &ArgList::new()
                .with_u64(head.offset())
                .with_bytes(word.as_bytes()),
        )?;
    }
    let delta = pool.stats().snapshot().delta(&before);
    println!("inserted 4 nodes: {:?}", walk(&pool, head));
    println!(
        "clobber_log: {} entries / {} bytes   v_log: {} records / {} bytes   fences: {}",
        delta.log_entries, delta.log_bytes, delta.vlog_entries, delta.vlog_bytes, delta.fences
    );

    // Simulate a power failure: every line that was not explicitly
    // persisted is dropped.
    let crashed = pool.crash(&CrashConfig::drop_all(7))?;
    let pool2 = Arc::new(PmemPool::open_from_media(
        crashed.media_snapshot(),
        PoolMode::CrashSim,
    )?);
    let rt2 = Runtime::open(pool2.clone(), RuntimeOptions::default())?;
    register(&rt2);
    let report = rt2.recover()?;
    let head2 = rt2.app_root()?;
    println!(
        "after crash + recovery ({} re-executed): {:?}",
        report.reexecuted.len(),
        walk(&pool2, head2)
    );
    assert_eq!(
        walk(&pool2, head2).len(),
        4,
        "all committed inserts survive"
    );
    Ok(())
}
