//! Crash a key-value store in the middle of a transaction, then watch each
//! logging strategy recover it.
//!
//! The write probe captures a power-failure image *inside* an insert; we
//! then recover the image under the clobber backend (re-execution
//! completes the interrupted insert) and under the PMDK-style undo backend
//! (rollback erases it).
//!
//! ```bash
//! cargo run --example crash_recovery
//! ```

use std::sync::{Arc, Mutex};

use clobber_nvm::{Backend, Runtime, RuntimeOptions};
use clobber_pds::HashMap;
use clobber_pmem::{CrashConfig, PmemPool, PoolMode, PoolOptions};

fn run_one(backend: Backend) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- backend: {} ---", backend.label());
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(32 << 20))?);
    let rt = Runtime::create(pool.clone(), RuntimeOptions::new(backend))?;
    HashMap::register(&rt);
    let map = HashMap::create(&rt)?;
    rt.set_app_root(map.root())?;

    // Capture a crash image after the 40th transactional store — inside
    // one of the inserts below.
    let image: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let countdown = Arc::new(Mutex::new(Some(40u32)));
    let (img, cd) = (image.clone(), countdown.clone());
    rt.set_write_probe(Some(Arc::new(move |pool| {
        let mut c = cd.lock().unwrap();
        match *c {
            Some(0) => {
                let crashed = pool.crash(&CrashConfig::drop_all(99)).expect("crash");
                *img.lock().unwrap() = Some(crashed.media_snapshot());
                *c = None; // disarm: crash capture is expensive
            }
            Some(n) => *c = Some(n - 1),
            None => {}
        }
    })));

    for k in 0..12u64 {
        map.insert(&rt, k, format!("value-{k}").as_bytes())?;
    }
    println!("before crash: {} keys committed", map.len(&pool)?);

    let media = image.lock().unwrap().take().expect("probe fired");
    let pool2 = Arc::new(PmemPool::open_from_media(media, PoolMode::CrashSim)?);
    let rt2 = Runtime::open(pool2.clone(), RuntimeOptions::new(backend))?;
    HashMap::register(&rt2);
    let report = rt2.recover()?;
    let map2 = HashMap::open(rt2.app_root()?);
    println!(
        "recovered: {} keys (re-executed: {}, rolled back: {})",
        map2.len(&pool2)?,
        report.reexecuted.len(),
        report.rolled_back
    );
    // Every surviving value is intact — partial transactions are invisible.
    for (k, v) in map2.dump(&pool2)? {
        assert_eq!(v, format!("value-{k}").into_bytes(), "torn value for {k}");
    }
    println!("all surviving values verified intact\n");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run_one(Backend::clobber())?;
    run_one(Backend::Undo)?;
    run_one(Backend::Redo)?;
    Ok(())
}
