//! Compile a transaction from textual IR, inspect the clobber analysis,
//! and run it — crash included — through the interpreter.
//!
//! ```bash
//! cargo run --example compiled_txn
//! ```

use std::sync::Arc;

use clobber_repro::nvm::{ArgList, Runtime, RuntimeOptions};
use clobber_repro::pmem::{PmemPool, PoolOptions};
use clobber_repro::txir::parse::parse_function;
use clobber_repro::txir::pipeline::{compile, register_compiled, CompileOptions};

/// The paper's Fig. 2a list insert, as textual IR. Node layout: [val][next].
const LIST_INSERT: &str = "
fn list_insert(2 params) {
b0:
  %0 = param 0
  %1 = param 1
  %2 = const 16
  %3 = alloc %2
  %4 = store [%3] <- %1
  %5 = load [%0]
  %6 = const 8
  %7 = gep %3 + %6
  %8 = store [%7] <- %5
  %9 = store [%0] <- %3
  ret %3
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Front end + the Clobber-NVM passes.
    let function = parse_function(LIST_INSERT.trim())?;
    println!("--- IR ---\n{function}\n");
    let refined = compile(function.clone(), CompileOptions { refine: true })?;
    let conservative = compile(function, CompileOptions { refine: false })?;
    println!(
        "conservative analysis instruments {} store(s); refined analysis {} store(s)",
        conservative.clobber_sites.len(),
        refined.clobber_sites.len()
    );
    for site in &refined.clobber_sites {
        println!("  clobber write at %{} (the head-pointer store)", site.0);
    }
    println!(
        "compile time: {} ns front end + {} ns Clobber-NVM passes\n",
        refined.timing.frontend_ns, refined.timing.passes_ns
    );

    // Execute the instrumented transaction on a real pool.
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(8 << 20))?);
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default())?;
    register_compiled(&rt, Arc::new(refined));
    let head = pool.alloc(8)?;
    pool.persist(head, 8)?;

    let before = pool.stats().snapshot();
    for v in [10u64, 20, 30] {
        rt.run(
            "list_insert",
            &ArgList::new().with_u64(head.offset()).with_u64(v),
        )?;
    }
    let d = pool.stats().snapshot().delta(&before);
    println!(
        "3 compiled inserts: {} clobber entries / {} bytes logged (one 8-byte head pointer each)",
        d.log_entries, d.log_bytes
    );

    let mut cur = pool.read_u64(head)?;
    let mut vals = Vec::new();
    while cur != 0 {
        vals.push(pool.read_u64(clobber_repro::pmem::PAddr::new(cur))?);
        cur = pool.read_u64(clobber_repro::pmem::PAddr::new(cur + 8))?;
    }
    println!("list contents (LIFO): {vals:?}");
    assert_eq!(vals, vec![30, 20, 10]);
    Ok(())
}
