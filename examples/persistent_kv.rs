//! Drive the memcached-like server with a memslap-style workload and
//! compare the logging traffic of the three library strategies.
//!
//! ```bash
//! cargo run --release --example persistent_kv
//! ```

use clobber_apps::kvserver::{KvServer, LockScheme};
use clobber_nvm::{Backend, Runtime, RuntimeOptions};
use clobber_pmem::{PmemPool, PoolOptions};
use clobber_sim::CostModel;
use clobber_workloads::{Mix, RequestStream};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cost = CostModel::optane();
    println!(
        "{:<11} {:<10} {:>12} {:>14} {:>12} {:>10}",
        "system", "mix", "ops/sec(sim)", "log entries/tx", "log bytes/tx", "fences/tx"
    );
    for mix in Mix::all() {
        for backend in [Backend::clobber(), Backend::Undo, Backend::Redo] {
            let pool = Arc::new(PmemPool::create(PoolOptions::performance(256 << 20))?);
            let rt = Runtime::create(pool.clone(), RuntimeOptions::new(backend))?;
            let server = KvServer::create(&rt, LockScheme::BucketRw)?;
            let n = 2000u64;
            let before = pool.stats().snapshot();
            let mut total_ns = 0u64;
            for req in RequestStream::new(mix, n, 5000, 1) {
                let b = pool.stats().snapshot();
                server.handle(&rt, &req)?;
                total_ns += cost.op_cost(&pool.stats().snapshot().delta(&b));
            }
            let d = pool.stats().snapshot().delta(&before);
            println!(
                "{:<11} {:<10} {:>12.0} {:>14.2} {:>12.1} {:>10.2}",
                backend.label(),
                mix.label(),
                n as f64 * 1e9 / total_ns.max(1) as f64,
                (d.log_entries + d.vlog_entries) as f64 / n as f64,
                (d.log_bytes + d.vlog_bytes) as f64 / n as f64,
                d.fences as f64 / n as f64,
            );
        }
    }
    Ok(())
}
