//! Cross-crate integration tests: the full system — simulated NVM,
//! runtime, compiler, data structures and applications — exercised
//! together through crashes and recovery.

use std::sync::{Arc, Mutex};

use clobber_repro::apps::kvserver::{KvServer, LockScheme};
use clobber_repro::apps::{TreeKind, Vacation, Yada};
use clobber_repro::nvm::{ArgList, Backend, Runtime, RuntimeOptions};
use clobber_repro::pds::HashMap;
use clobber_repro::pmem::{CrashConfig, PAddr, PmemPool, PoolMode, PoolOptions};
use clobber_repro::txir::pipeline::{compile, register_compiled, CompileOptions};
use clobber_repro::txir::programs;
use clobber_repro::workloads::vacation::ActionStream;
use clobber_repro::workloads::{Mix, Request, RequestStream};

/// Captures a crash image after N transactional stores via the runtime's
/// write probe.
fn arm_trap(rt: &Runtime, after: u64, seed: u64) -> Arc<Mutex<Option<Vec<u8>>>> {
    let image: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let countdown = Arc::new(Mutex::new(Some(after)));
    let (img, cd) = (image.clone(), countdown);
    rt.set_write_probe(Some(Arc::new(move |pool| {
        let mut c = cd.lock().unwrap();
        match *c {
            Some(0) => {
                let crashed = pool.crash(&CrashConfig::drop_all(seed)).expect("crash");
                *img.lock().unwrap() = Some(crashed.media_snapshot());
                *c = None; // disarm: crash capture is expensive
            }
            Some(n) => *c = Some(n - 1),
            None => {}
        }
    })));
    image
}

#[test]
fn compiled_and_handwritten_transactions_share_a_pool() {
    // A statically compiled IR transaction (list insert) and a hand-written
    // hashmap run against the same pool; a crash interrupts one of them and
    // recovery completes both worlds.
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(64 << 20)).unwrap());
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default()).unwrap();
    HashMap::register(&rt);
    let map = HashMap::create(&rt).unwrap();
    let compiled = Arc::new(compile(programs::list_insert(), CompileOptions::default()).unwrap());
    register_compiled(&rt, compiled.clone());
    let head = pool.alloc(8).unwrap();
    pool.persist(head, 8).unwrap();
    rt.set_app_root(map.root()).unwrap();

    let image = arm_trap(&rt, 55, 1);
    for k in 0..8u64 {
        map.insert(&rt, k, format!("v{k}").as_bytes()).unwrap();
        rt.run(
            "list_insert",
            &ArgList::new().with_u64(head.offset()).with_u64(1000 + k),
        )
        .unwrap();
    }
    let media = image.lock().unwrap().take().expect("trap fired");

    let pool2 = Arc::new(PmemPool::open_from_media(media, PoolMode::CrashSim).unwrap());
    let rt2 = Runtime::open(pool2.clone(), RuntimeOptions::default()).unwrap();
    HashMap::register(&rt2);
    register_compiled(&rt2, compiled);
    let report = rt2.recover().unwrap();
    assert!(report.reexecuted.len() <= 1);

    // Hashmap contents are a verified prefix.
    let map2 = HashMap::open(rt2.app_root().unwrap());
    for (k, v) in map2.dump(&pool2).unwrap() {
        assert_eq!(v, format!("v{k}").into_bytes());
    }
    // The list's nodes chain correctly (IR node layout: [val][next]).
    let mut cur = pool2.read_u64(head).unwrap();
    let mut seen = 0;
    while cur != 0 {
        let val = pool2.read_u64(PAddr::new(cur)).unwrap();
        assert!((1000..1008).contains(&val), "bad list value {val}");
        cur = pool2.read_u64(PAddr::new(cur + 8)).unwrap();
        seen += 1;
    }
    assert!(seen >= map2.len(&pool2).unwrap().saturating_sub(1));
}

#[test]
fn kv_server_survives_a_mid_request_power_failure() {
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(64 << 20)).unwrap());
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default()).unwrap();
    let server = KvServer::create(&rt, LockScheme::BucketRw).unwrap();
    let image = arm_trap(&rt, 120, 2);
    let mut last = std::collections::HashMap::new();
    for req in RequestStream::new(Mix::InsertIntensive, 60, 40, 3) {
        if let Request::Set { key, value } = &req {
            last.insert(key.clone(), value.clone());
        }
        server.handle(&rt, &req).unwrap();
    }
    let media = image.lock().unwrap().take().expect("trap fired");

    let pool2 = Arc::new(PmemPool::open_from_media(media, PoolMode::CrashSim).unwrap());
    let rt2 = Runtime::open(pool2.clone(), RuntimeOptions::default()).unwrap();
    KvServer::register(&rt2);
    rt2.recover().unwrap();
    let server2 = KvServer::open(&rt2, LockScheme::BucketRw).unwrap();
    // Every key the recovered store holds must carry an intact value (no
    // torn writes); keys set before the crash point must be present.
    let table = server2.table();
    for (k, v) in table.dump(&pool2).unwrap() {
        assert_eq!(v, RequestStream::value_bytes(k), "torn value for {k}");
    }
}

#[test]
fn vacation_conservation_holds_through_crashes() {
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(128 << 20)).unwrap());
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default()).unwrap();
    let v = Vacation::create(&rt, TreeKind::RedBlack, 40).unwrap();
    // Arm after setup so the crash lands inside a reservation transaction.
    let image = arm_trap(&rt, 333, 4);
    for action in ActionStream::new(120, 40, 15, 3, 8) {
        v.run_action(&rt, 0, &action).unwrap();
    }
    let media = image.lock().unwrap().take().expect("trap fired");

    let pool2 = Arc::new(PmemPool::open_from_media(media, PoolMode::CrashSim).unwrap());
    let rt2 = Runtime::open(pool2.clone(), RuntimeOptions::default()).unwrap();
    Vacation::register(&rt2);
    let report = rt2.recover().unwrap();
    let v2 = Vacation::open(&rt2).unwrap();
    // The books balance: every reservation held by a customer is matched by
    // a decremented item — even for the re-executed transaction.
    v2.verify(&pool2).unwrap();
    assert!(report.rolled_back == 0);
}

#[test]
fn yada_mesh_survives_crash_and_converges() {
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(128 << 20)).unwrap());
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default()).unwrap();
    let mesh = Yada::create(&rt, 50, 20.0, 31).unwrap();
    let image = arm_trap(&rt, 200, 5);
    let _ = mesh.refine_all(&rt, 0, 30).unwrap();
    let media = image.lock().unwrap().take().expect("trap fired");

    let pool2 = Arc::new(PmemPool::open_from_media(media, PoolMode::CrashSim).unwrap());
    let rt2 = Runtime::open(pool2.clone(), RuntimeOptions::default()).unwrap();
    Yada::register(&rt2);
    rt2.recover().unwrap();
    let mesh2 = Yada::open(&rt2).unwrap();
    mesh2.verify(&pool2, false).unwrap();
    let stats = mesh2.refine_all(&rt2, 0, 100_000).unwrap();
    assert!(!stats.capped);
    mesh2.verify(&pool2, true).unwrap();
}

#[test]
fn repeated_crashes_during_recovery_still_converge() {
    // Crash, start recovering, crash again mid-recovery, recover again:
    // the final state must still be consistent (recovery is idempotent
    // because re-execution restores inputs first).
    let pool = Arc::new(PmemPool::create(PoolOptions::crash_sim(64 << 20)).unwrap());
    let rt = Runtime::create(pool.clone(), RuntimeOptions::default()).unwrap();
    HashMap::register(&rt);
    let map = HashMap::create(&rt).unwrap();
    rt.set_app_root(map.root()).unwrap();
    let image = arm_trap(&rt, 33, 6);
    for k in 0..10u64 {
        map.insert(&rt, k, format!("v{k}").as_bytes()).unwrap();
    }
    let media = image.lock().unwrap().take().expect("trap fired");

    // First recovery attempt, itself interrupted by a crash.
    let pool2 = Arc::new(PmemPool::open_from_media(media, PoolMode::CrashSim).unwrap());
    let rt2 = Runtime::open(pool2.clone(), RuntimeOptions::default()).unwrap();
    HashMap::register(&rt2);
    let image2 = arm_trap(&rt2, 2, 7); // crash after 2 writes of the re-execution
    rt2.recover().unwrap();
    let media2 = image2.lock().unwrap().take();
    if let Some(media2) = media2 {
        let pool3 = Arc::new(PmemPool::open_from_media(media2, PoolMode::CrashSim).unwrap());
        let rt3 = Runtime::open(pool3.clone(), RuntimeOptions::default()).unwrap();
        HashMap::register(&rt3);
        rt3.recover().unwrap();
        let map3 = HashMap::open(rt3.app_root().unwrap());
        for (k, v) in map3.dump(&pool3).unwrap() {
            assert_eq!(v, format!("v{k}").into_bytes());
        }
    } else {
        // The interrupted tx may have had no writes before the trap point;
        // then the first recovery already converged.
        let map2 = HashMap::open(rt2.app_root().unwrap());
        map2.dump(&pool2).unwrap();
    }
}

#[test]
fn backends_reach_identical_data_structure_states() {
    // Determinism across logging strategies on a multi-structure workload.
    let mut fingerprints = Vec::new();
    for backend in [
        Backend::NoLog,
        Backend::clobber(),
        Backend::Undo,
        Backend::Redo,
        Backend::Atlas,
    ] {
        let pool = Arc::new(PmemPool::create(PoolOptions::performance(64 << 20)).unwrap());
        let rt = Runtime::create(pool.clone(), RuntimeOptions::new(backend)).unwrap();
        HashMap::register(&rt);
        let map = HashMap::create(&rt).unwrap();
        for k in 0..100u64 {
            map.insert(&rt, k % 37, format!("{}", k * k).as_bytes())
                .unwrap();
        }
        for k in (0..37u64).step_by(3) {
            map.remove(&rt, k).unwrap();
        }
        let mut dump = map.dump(&pool).unwrap();
        dump.sort();
        fingerprints.push(dump);
    }
    for w in fingerprints.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}
