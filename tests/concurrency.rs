//! Real multi-threaded stress tests (the scaling *figures* use the
//! deterministic DES; these tests verify the runtime is actually safe to
//! share across OS threads, per the paper's locking model: callers hold
//! locks, each thread uses its own v_log slot).

use std::sync::Arc;

use clobber_repro::nvm::{Backend, Runtime, RuntimeOptions};
use clobber_repro::pds::{BpTree, HashMap, SkipList};
use clobber_repro::pmem::{PmemPool, PoolOptions};
use parking_lot::{Mutex, RwLock};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 150;

fn runtime(backend: Backend) -> (Arc<PmemPool>, Arc<Runtime>) {
    let pool = Arc::new(PmemPool::create(PoolOptions::performance(256 << 20)).unwrap());
    let rt = Arc::new(Runtime::create(pool.clone(), RuntimeOptions::new(backend)).unwrap());
    (pool, rt)
}

#[test]
fn hashmap_under_bucket_locks_from_many_threads() {
    for backend in [Backend::clobber(), Backend::Undo, Backend::Redo] {
        let (pool, rt) = runtime(backend);
        HashMap::register(&rt);
        let map = HashMap::create(&rt).unwrap();
        // One rwlock per bucket, as the paper's hashmap uses.
        let locks: Arc<Vec<RwLock<()>>> = Arc::new(
            (0..clobber_repro::pds::hashmap::BUCKETS)
                .map(|_| RwLock::new(()))
                .collect(),
        );
        crossbeam::scope(|s| {
            for t in 0..THREADS {
                let (rt, map, locks) = (rt.clone(), map, locks.clone());
                s.spawn(move |_| {
                    for i in 0..OPS_PER_THREAD {
                        let key = (t as u64) * OPS_PER_THREAD + i;
                        let bucket =
                            (map.lock_of(key) % clobber_repro::pds::hashmap::BUCKETS) as usize;
                        let _guard = locks[bucket].write();
                        map.insert(&rt, key, &key.to_le_bytes()).unwrap();
                    }
                    for i in 0..OPS_PER_THREAD {
                        let key = (t as u64) * OPS_PER_THREAD + i;
                        let bucket =
                            (map.lock_of(key) % clobber_repro::pds::hashmap::BUCKETS) as usize;
                        let _guard = locks[bucket].read();
                        assert_eq!(map.get(&rt, key).unwrap(), Some(key.to_le_bytes().to_vec()));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(
            map.len(&pool).unwrap() as u64,
            THREADS as u64 * OPS_PER_THREAD,
            "backend {}",
            backend.label()
        );
        // Slots are leased per live thread and returned on exit, so the
        // count is bounded by *peak concurrency*: a thread that finishes
        // before a peer starts hands its slot to that peer.
        let slots = rt.slot_count();
        assert!(
            (1..=THREADS).contains(&slots),
            "v_log slots bounded by peak concurrency, got {slots}"
        );
    }
}

#[test]
fn skiplist_under_global_lock_from_many_threads() {
    let (pool, rt) = runtime(Backend::clobber());
    SkipList::register(&rt);
    let sl = SkipList::create(&rt).unwrap();
    let lock = Arc::new(Mutex::new(()));
    crossbeam::scope(|s| {
        for t in 0..THREADS {
            let (rt, sl, lock) = (rt.clone(), sl, lock.clone());
            s.spawn(move |_| {
                for i in 0..OPS_PER_THREAD {
                    let key = (t as u64) * OPS_PER_THREAD + i;
                    let _guard = lock.lock();
                    sl.insert(&rt, key, &key.to_le_bytes()).unwrap();
                }
            });
        }
    })
    .unwrap();
    let dumped = sl.dump(&pool).unwrap();
    assert_eq!(dumped.len() as u64, THREADS as u64 * OPS_PER_THREAD);
    assert!(
        dumped.windows(2).all(|w| w[0].0 < w[1].0),
        "sorted after races"
    );
}

#[test]
fn bptree_under_a_tree_lock_from_many_threads() {
    let (pool, rt) = runtime(Backend::Undo);
    BpTree::register(&rt);
    let bt = BpTree::create(&rt).unwrap();
    let lock = Arc::new(Mutex::new(()));
    crossbeam::scope(|s| {
        for t in 0..THREADS {
            let (rt, bt, lock) = (rt.clone(), bt, lock.clone());
            s.spawn(move |_| {
                for i in 0..OPS_PER_THREAD {
                    let key = (t as u64) * OPS_PER_THREAD + i;
                    let _guard = lock.lock();
                    bt.insert_u64(&rt, key, &key.to_le_bytes()).unwrap();
                }
            });
        }
    })
    .unwrap();
    assert_eq!(
        bt.len(&pool).unwrap() as u64,
        THREADS as u64 * OPS_PER_THREAD
    );
}

#[test]
fn independent_counters_need_no_locks() {
    // Disjoint data: each thread owns its own cell, so no application locks
    // are needed and slots keep the v_logs independent.
    let (pool, rt) = runtime(Backend::clobber());
    rt.register("bump", |tx, args| {
        let cell = clobber_repro::pmem::PAddr::new(args.u64(0)?);
        let v = tx.read_u64(cell)?;
        tx.write_u64(cell, v + 1)?;
        Ok(None)
    });
    let cells: Vec<_> = (0..THREADS).map(|_| pool.alloc(8).unwrap()).collect();
    for c in &cells {
        pool.persist(*c, 8).unwrap();
    }
    crossbeam::scope(|s| {
        for (t, cell) in cells.iter().enumerate() {
            let rt = rt.clone();
            let cell = *cell;
            s.spawn(move |_| {
                for _ in 0..500 {
                    rt.run(
                        "bump",
                        &clobber_repro::nvm::ArgList::new().with_u64(cell.offset()),
                    )
                    .unwrap();
                }
                let _ = t;
            });
        }
    })
    .unwrap();
    for c in &cells {
        assert_eq!(pool.read_u64(*c).unwrap(), 500);
    }
}
