//! Top-level reproduction package for *Clobber-NVM: Log Less, Re-execute
//! More* (ASPLOS 2021).
//!
//! This crate re-exports the workspace members under one roof for the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). The substance lives in the member crates:
//!
//! * [`pmem`] — simulated persistent memory with crash injection;
//! * [`nvm`] — the Clobber-NVM runtime and baseline logging backends;
//! * [`txir`] — the clobber-identification compiler;
//! * [`pds`] — persistent data structures;
//! * [`workloads`] — workload generators;
//! * [`sim`] — discrete-event thread-scaling executor and cost model;
//! * [`apps`] — KV server, vacation, yada.
//!
//! See the repository README for a guided tour and DESIGN.md for the
//! paper-to-module map.

#![warn(missing_docs)]

pub use clobber_apps as apps;
pub use clobber_nvm as nvm;
pub use clobber_pds as pds;
pub use clobber_pmem as pmem;
pub use clobber_sim as sim;
pub use clobber_txir as txir;
pub use clobber_workloads as workloads;
